//! Sinks: where telemetry events go.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{push_json_args, push_json_str, push_json_value, TrackId};
use crate::{EventKind, TelemetryEvent};

/// A consumer of telemetry events.
///
/// Sinks are shared across the session thread and every pool worker, so all
/// methods take `&self`; implementations serialize internally (the provided
/// sinks hold a [`Mutex`] around their writer). Emission sites gate on
/// [`Sink::enabled`] *once per handle construction* — a sink that returns
/// `false` (only [`NullSink`] does) costs a single branch per instrumented
/// operation: no clock reads, no argument building, no allocation.
pub trait Sink: Send + Sync {
    /// Whether this sink wants events at all. Checked once when the sink is
    /// installed; `false` turns the whole instrumentation layer into dead
    /// branches.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn emit(&self, event: &TelemetryEvent);

    /// Flushes buffered output (stream sinks). Called at the end of every
    /// `Session::replay`; final formatting (e.g. the Chrome trace's closing
    /// bracket) happens on drop instead, so one sink can span several
    /// replays.
    fn flush(&self) {}
}

/// Blanket impl so shared handles (`Arc<MemorySink>` etc.) are sinks too.
impl<S: Sink + ?Sized> Sink for Arc<S> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn emit(&self, event: &TelemetryEvent) {
        (**self).emit(event)
    }

    fn flush(&self) {
        (**self).flush()
    }
}

/// The default sink: drops everything, and reports itself disabled so the
/// instrumentation layer never materializes an event for it in the first
/// place. Attaching `NullSink` is observably identical to attaching nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &TelemetryEvent) {}
}

/// An in-memory sink collecting every event — the test observability
/// harnesses' sink of choice.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl MemorySink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything collected so far.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events collected.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Returns `true` if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops everything collected so far.
    pub fn clear(&self) {
        self.events.lock().expect("memory sink poisoned").clear();
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &TelemetryEvent) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Machine-readable JSON Lines output: one self-contained JSON object per
/// event, one per line.
///
/// The schema is flat and stable (validated by the `fig_telemetry` CI job):
///
/// ```json
/// {"kind":"span","name":"run","ts_us":12,"dur_us":3,"track":1,"args":{"index":0}}
/// {"kind":"instant","name":"summary","ts_us":40,"track":0,"args":{}}
/// {"kind":"counter","name":"progress:runs_per_sec","ts_us":41,"track":0,"value":812.5}
/// {"kind":"warning","name":"cache:low-hit-rate","ts_us":90,"track":1,"message":"..."}
/// ```
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `writer`; every event becomes one line.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("jsonl sink poisoned")
    }
}

impl JsonLinesSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and streams events into it.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

/// Renders one event as its JSON Lines object (no trailing newline).
pub fn jsonl_line(event: &TelemetryEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"kind\":\"");
    out.push_str(event.kind.kind_name());
    out.push_str("\",\"name\":");
    push_json_str(&mut out, &event.name);
    out.push_str(",\"ts_us\":");
    out.push_str(&event.ts_us.to_string());
    out.push_str(",\"track\":");
    out.push_str(&event.track.to_string());
    match &event.kind {
        EventKind::Span { dur_us, args } => {
            out.push_str(",\"dur_us\":");
            out.push_str(&dur_us.to_string());
            out.push_str(",\"args\":");
            push_json_args(&mut out, args);
        }
        EventKind::Instant { args } => {
            out.push_str(",\"args\":");
            push_json_args(&mut out, args);
        }
        EventKind::Counter { value } => {
            out.push_str(",\"value\":");
            push_json_value(&mut out, &crate::ArgValue::Float(*value));
        }
        EventKind::Warning { message } => {
            out.push_str(",\"message\":");
            push_json_str(&mut out, message);
        }
    }
    out.push('}');
    out
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn emit(&self, event: &TelemetryEvent) {
        let line = jsonl_line(event);
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

/// Chrome trace-event output (the JSON Array Format understood by
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)).
///
/// * every [`TrackId`] becomes its own named thread row (`pid` 1, `tid` =
///   track), so a pooled replay renders as one flamegraph lane per worker;
/// * spans become complete (`"ph":"X"`) events, instants become `"ph":"i"`,
///   counters become `"ph":"C"`, warnings become instant events in the
///   `warning` category;
/// * the stream starts with `[` and separates events with `,\n`. The
///   closing `]` is written when the sink is dropped — but the trace-event
///   format explicitly tolerates a missing `]`, so even a trace cut short
///   by a crash loads.
pub struct ChromeTraceSink<W: Write + Send> {
    inner: Mutex<ChromeTraceState<W>>,
    closed: AtomicBool,
}

struct ChromeTraceState<W> {
    writer: W,
    /// Whether anything was written yet (controls the comma separator).
    any: bool,
    /// Tracks that already received their `thread_name` metadata event.
    named_tracks: Vec<TrackId>,
}

impl<W: Write + Send> ChromeTraceSink<W> {
    /// Wraps `writer` with an empty trace.
    pub fn new(writer: W) -> Self {
        ChromeTraceSink {
            inner: Mutex::new(ChromeTraceState {
                writer,
                any: false,
                named_tracks: Vec::new(),
            }),
            closed: AtomicBool::new(false),
        }
    }

    /// Writes the closing bracket and flushes. Idempotent; also invoked on
    /// drop. After closing, further events are dropped.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut state = self.inner.lock().expect("chrome sink poisoned");
        if !state.any {
            let _ = state.writer.write_all(b"[");
        }
        let _ = state.writer.write_all(b"\n]\n");
        let _ = state.writer.flush();
    }
}

impl ChromeTraceSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and streams the trace into it. Open the
    /// result in `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write + Send> Drop for ChromeTraceSink<W> {
    fn drop(&mut self) {
        self.close();
    }
}

/// The display name of a track in the rendered trace.
fn track_name(track: TrackId) -> String {
    if track == crate::COORDINATOR_TRACK {
        "session".to_owned()
    } else {
        format!("worker-{}", track - 1)
    }
}

/// Renders one event as its Chrome trace-event JSON object.
pub fn chrome_trace_object(event: &TelemetryEvent) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"name\":");
    push_json_str(&mut out, &event.name);
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&event.track.to_string());
    out.push_str(",\"ts\":");
    out.push_str(&event.ts_us.to_string());
    match &event.kind {
        EventKind::Span { dur_us, args } => {
            out.push_str(",\"ph\":\"X\",\"cat\":\"erpi\",\"dur\":");
            out.push_str(&dur_us.to_string());
            out.push_str(",\"args\":");
            push_json_args(&mut out, args);
        }
        EventKind::Instant { args } => {
            out.push_str(",\"ph\":\"i\",\"cat\":\"erpi\",\"s\":\"t\",\"args\":");
            push_json_args(&mut out, args);
        }
        EventKind::Counter { value } => {
            out.push_str(",\"ph\":\"C\",\"cat\":\"erpi\",\"args\":{\"value\":");
            push_json_value(&mut out, &crate::ArgValue::Float(*value));
            out.push('}');
        }
        EventKind::Warning { message } => {
            out.push_str(",\"ph\":\"i\",\"cat\":\"warning\",\"s\":\"t\",\"args\":{\"message\":");
            push_json_str(&mut out, message);
            out.push('}');
        }
    }
    out.push('}');
    out
}

/// The `thread_name` metadata object that labels `track`.
fn track_metadata_object(track: TrackId) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
    out.push_str(&track.to_string());
    out.push_str(",\"args\":{\"name\":");
    push_json_str(&mut out, &track_name(track));
    out.push_str("}}");
    out
}

impl<W: Write + Send> Sink for ChromeTraceSink<W> {
    fn emit(&self, event: &TelemetryEvent) {
        if self.closed.load(Ordering::SeqCst) {
            return;
        }
        let mut state = self.inner.lock().expect("chrome sink poisoned");
        let mut objects = Vec::with_capacity(2);
        if !state.named_tracks.contains(&event.track) {
            state.named_tracks.push(event.track);
            objects.push(track_metadata_object(event.track));
        }
        objects.push(chrome_trace_object(event));
        for object in objects {
            let lead: &[u8] = if state.any { b",\n" } else { b"[\n" };
            state.any = true;
            let _ = state.writer.write_all(lead);
            let _ = state.writer.write_all(object.as_bytes());
        }
    }

    fn flush(&self) {
        if !self.closed.load(Ordering::SeqCst) {
            let _ = self
                .inner
                .lock()
                .expect("chrome sink poisoned")
                .writer
                .flush();
        }
    }
}

/// A shared in-memory byte buffer usable as the writer of a stream sink —
/// lets tests (and the bench harness) read back what a [`JsonLinesSink`] or
/// [`ChromeTraceSink`] wrote without touching the filesystem.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffered bytes, as a UTF-8 string.
    pub fn contents(&self) -> String {
        String::from_utf8(self.0.lock().expect("shared buf poisoned").clone())
            .expect("sinks write UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("shared buf poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArgValue, COORDINATOR_TRACK};
    use std::borrow::Cow;

    fn span(name: &'static str, track: TrackId) -> TelemetryEvent {
        TelemetryEvent {
            ts_us: 5,
            track,
            name: Cow::Borrowed(name),
            kind: EventKind::Span {
                dur_us: 7,
                args: vec![("index", ArgValue::UInt(3))],
            },
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.emit(&span("a", 0));
        sink.emit(&span("b", 1));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].track, 1);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_lines_are_flat_objects() {
        let buf = SharedBuf::new();
        let sink = JsonLinesSink::new(buf.clone());
        sink.emit(&span("run", 2));
        sink.emit(&TelemetryEvent {
            ts_us: 9,
            track: 0,
            name: Cow::Borrowed("progress:runs_per_sec"),
            kind: EventKind::Counter { value: 12.5 },
        });
        sink.flush();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"kind":"span","name":"run","ts_us":5,"track":2,"dur_us":7,"args":{"index":3}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"kind":"counter","name":"progress:runs_per_sec","ts_us":9,"track":0,"value":12.5}"#
        );
    }

    #[test]
    fn chrome_trace_names_each_track_once_and_closes() {
        let buf = SharedBuf::new();
        let sink = ChromeTraceSink::new(buf.clone());
        sink.emit(&span("run", 1));
        sink.emit(&span("run", 1));
        sink.emit(&span("enumerate", COORDINATOR_TRACK));
        sink.close();
        let text = buf.contents();
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("thread_name").count(), 2, "{text}");
        assert!(text.contains("\"worker-0\""));
        assert!(text.contains("\"session\""));
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 3);
        // Close is idempotent and emission after close is dropped.
        sink.emit(&span("late", 1));
        sink.close();
        assert_eq!(buf.contents(), text);
    }

    #[test]
    fn empty_chrome_trace_is_still_valid_json() {
        let buf = SharedBuf::new();
        ChromeTraceSink::new(buf.clone()).close();
        assert_eq!(buf.contents().trim(), "[\n]");
    }

    #[test]
    fn warnings_render_with_their_message() {
        let ev = TelemetryEvent {
            ts_us: 1,
            track: 1,
            name: Cow::Borrowed("cache:low-hit-rate"),
            kind: EventKind::Warning {
                message: "hit rate 3.0% below 10%".into(),
            },
        };
        assert!(jsonl_line(&ev).contains("\"message\":\"hit rate 3.0% below 10%\""));
        assert!(chrome_trace_object(&ev).contains("\"cat\":\"warning\""));
    }
}

//! Structured telemetry for the ER-π replay pipeline.
//!
//! A lock-cheap, always-compiled tracing/metrics layer threaded through
//! every pipeline stage — recording, interleaving enumeration, the four
//! pruning algorithms, dispatch, per-run replay, constraint checking, and
//! distributed-lock acquisition. The design goal is *zero cost when
//! disabled*: instrumentation sites hold a [`Telemetry`] handle and gate on
//! one pre-computed branch ([`Telemetry::is_active`]); with no sink — or
//! with the default [`NullSink`] — no clock is read, no arguments are
//! built, nothing allocates.
//!
//! Three production sinks:
//!
//! * [`NullSink`] — the default; reports itself disabled so the whole
//!   layer compiles down to dead branches.
//! * [`JsonLinesSink`] — one flat JSON object per event, one per line;
//!   machine-readable campaign logs.
//! * [`ChromeTraceSink`] — Chrome trace-event JSON with one named track
//!   per pool worker; open the output in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev) to see a replay campaign as a
//!   flamegraph.
//!
//! Plus [`MemorySink`] for tests, [`Progress`] for live runs/sec / ETA /
//! cache-hit sampling, [`HitRateMonitor`] for the degraded
//! checkpoint-trie warning, and [`Registry`] — a typed, label-aware
//! metric registry (counters, gauges, log-bucketed latency histograms)
//! with Prometheus text exposition that every layer of the engine
//! registers into.
//!
//! Telemetry is strictly write-only: nothing observed through this crate
//! feeds back into replay results, so attaching any sink leaves `Report`s
//! byte-identical to a detached run (enforced by the
//! `telemetry_equivalence` test suite in the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod handle;
mod progress;
mod registry;
mod sink;

pub use event::{
    worker_track, ArgValue, Args, EventKind, TelemetryEvent, TrackId, COORDINATOR_TRACK,
};
pub use handle::Telemetry;
pub use progress::{
    HitRateMonitor, Progress, ProgressSnapshot, HIT_RATE_THRESHOLD, HIT_RATE_WINDOW,
};
pub use registry::{
    lint_exposition, lint_monotone, Counter, Gauge, Histogram, MetricKind, Registry,
};
pub use sink::{
    chrome_trace_object, jsonl_line, ChromeTraceSink, JsonLinesSink, MemorySink, NullSink,
    SharedBuf, Sink,
};

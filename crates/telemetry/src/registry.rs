//! A typed, label-aware metrics registry with Prometheus text exposition.
//!
//! Every layer of the engine — the session, the shared [`ExecutorService`],
//! the pruners, and the daemon — registers counters, gauges and
//! log-bucketed latency histograms into one [`Registry`]. Handles are
//! `Arc`'d atomics, so the hot path never takes a lock: the registry's
//! mutex guards only registration and rendering.
//!
//! The exposition format is the Prometheus text format (`# HELP`/`# TYPE`
//! lines, escaped labels, cumulative `_bucket{le=...}` series). A small
//! in-repo lint ([`lint_exposition`], [`lint_monotone`]) validates scrapes
//! in tests and CI without external tooling.
//!
//! [`ExecutorService`]: ../er_pi/struct.ExecutorService.html

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of finite histogram buckets: powers of two from 1 µs to 2^25 µs
/// (~33.5 s). A final implicit `+Inf` bucket catches the rest.
const HISTOGRAM_BUCKETS: usize = 26;

/// What a metric family measures. Determines the `# TYPE` line and how
/// series are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// Arbitrary instantaneous value.
    Gauge,
    /// Log-bucketed latency distribution in microseconds.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotone counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle storing an `f64` (as raw bits in an atomic). Cloning
/// shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// `buckets[i]` counts observations with `value_us <= 2^i`; overflow
    /// lands only in the implicit `+Inf` bucket (`count - sum(buckets)`).
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

/// A log-bucketed latency histogram handle (microsecond observations,
/// power-of-two bucket bounds). Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one latency observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        // Index of the first power-of-two bound >= us; us = 0 maps to
        // bucket 0 (le 1).
        let idx = (64 - us.saturating_sub(1).leading_zeros()) as usize;
        if idx < HISTOGRAM_BUCKETS {
            self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
        self.0.sum_us.fetch_add(us, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` observations that averaged `mean_us` each — a cheap
    /// bulk form for batch completions where per-item timing was not
    /// taken.
    pub fn observe_n_us(&self, mean_us: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = (64 - mean_us.saturating_sub(1).leading_zeros()) as usize;
        if idx < HISTOGRAM_BUCKETS {
            self.0.buckets[idx].fetch_add(n, Ordering::Relaxed);
        }
        self.0
            .sum_us
            .fetch_add(mean_us.saturating_mul(n), Ordering::Relaxed);
        self.0.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.0.sum_us.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// The process-wide metric registry. Cheap to share (`Arc`), cheap to
/// write (handles are lock-free); the internal mutex is taken only for
/// registration and rendering.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} re-registered as {kind:?}, was {:?}",
            family.kind
        );
        let key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let entry = family.series.entry(key).or_insert_with(make);
        match entry {
            Series::Counter(c) => Series::Counter(Arc::clone(c)),
            Series::Gauge(g) => Series::Gauge(Arc::clone(g)),
            Series::Histogram(h) => Series::Histogram(Arc::clone(h)),
        }
    }

    /// Registers (or re-fetches) a counter series. Re-registering the same
    /// name + labels returns a handle to the same cell; re-registering the
    /// same name with a different kind panics.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Arc::new(AtomicU64::new(0)))
        }) {
            Series::Counter(c) => Counter(c),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or re-fetches) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, MetricKind::Gauge, labels, || {
            Series::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        }) {
            Series::Gauge(g) => Gauge(g),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or re-fetches) a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, MetricKind::Histogram, labels, || {
            Series::Histogram(Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum_us: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }))
        }) {
            Series::Histogram(h) => Histogram(h),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Renders every family in the Prometheus text exposition format.
    /// Families and series are emitted in sorted order, so two renders of
    /// the same state are byte-identical.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in family.series.iter() {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, None),
                            c.load(Ordering::Relaxed)
                        );
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, None),
                            fmt_f64(f64::from_bits(g.load(Ordering::Relaxed)))
                        );
                    }
                    Series::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bucket) in h.buckets.iter().enumerate() {
                            cumulative += bucket.load(Ordering::Relaxed);
                            let le = (1u64 << i).to_string();
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(labels, Some(&le))
                            );
                        }
                        let count = h.count.load(Ordering::Relaxed);
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {count}",
                            render_labels(labels, Some("+Inf"))
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels, None),
                            h.sum_us.load(Ordering::Relaxed)
                        );
                        let _ =
                            writeln!(out, "{name}_count{} {count}", render_labels(labels, None));
                    }
                }
            }
        }
        out
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Parsed form of one sample line: metric name, sorted labels, value.
type Sample = (String, Vec<(String, String)>, f64);

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    // `s` is the text between `{` and `}`. Hand-rolled scan so escaped
    // quotes and commas inside values are handled.
    let mut labels = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        // key
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            if !(c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("bad label key character {c:?} in {s:?}"));
            }
            key.push(c);
            chars.next();
        }
        if key.is_empty() {
            return Err(format!("empty label key in {s:?}"));
        }
        if chars.next() != Some('=') {
            return Err(format!("missing '=' after label key {key:?}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label value for {key:?} not quoted"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key:?}")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                '\n' => return Err(format!("raw newline in label {key:?}")),
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("unterminated label value for {key:?}"));
        }
        labels.push((key, value));
        match chars.next() {
            None => break,
            Some(',') => continue,
            Some(c) => return Err(format!("expected ',' between labels, got {c:?}")),
        }
    }
    Ok(labels)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_and_labels, value) = match line.rfind(' ') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => return Err(format!("sample line without value: {line:?}")),
    };
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse()
            .map_err(|e| format!("bad sample value {v:?}: {e}"))?,
    };
    let (name, labels) = match name_and_labels.find('{') {
        Some(open) => {
            let close = name_and_labels
                .rfind('}')
                .ok_or_else(|| format!("unclosed label braces: {line:?}"))?;
            if close != name_and_labels.len() - 1 {
                return Err(format!("trailing text after labels: {line:?}"));
            }
            (
                &name_and_labels[..open],
                parse_labels(&name_and_labels[open + 1..close])?,
            )
        }
        None => (name_and_labels, Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok((name.to_string(), labels, value))
}

/// Parses a full text exposition into `(types, samples)`.
fn parse_exposition(text: &str) -> Result<(BTreeMap<String, String>, Vec<Sample>), String> {
    let mut types = BTreeMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or_default();
            let kind = it
                .next()
                .ok_or_else(|| format!("bad TYPE line: {line:?}"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("unknown metric type {kind:?} in {line:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("duplicate TYPE line for {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line)?);
    }
    Ok((types, samples))
}

/// Resolves a sample name to its family name and declared type, honouring
/// the `_bucket`/`_sum`/`_count` suffixes of histogram families.
fn family_of<'a>(name: &'a str, types: &'a BTreeMap<String, String>) -> Option<(&'a str, &'a str)> {
    if let Some(t) = types.get(name) {
        return Some((name, t.as_str()));
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some(t) = types.get(base) {
                if t == "histogram" {
                    return Some((base, t.as_str()));
                }
            }
        }
    }
    None
}

/// Validates a Prometheus text exposition: every sample has a `# TYPE`
/// line, names and labels are well-formed, counter and histogram values
/// are finite and non-negative, and histogram buckets are cumulative with
/// a closing `+Inf` bucket equal to `_count`.
pub fn lint_exposition(text: &str) -> Result<(), String> {
    // (family, labels-minus-le) -> (last le bound, saw +Inf, bucket total,
    // count sample)
    type HistKey = (String, Vec<(String, String)>);
    type HistState = (f64, f64, bool, Option<f64>);
    let (types, samples) = parse_exposition(text)?;
    let mut hists: BTreeMap<HistKey, HistState> = BTreeMap::new();
    for (name, labels, value) in &samples {
        let (family, kind) =
            family_of(name, &types).ok_or_else(|| format!("sample {name:?} has no # TYPE line"))?;
        match kind {
            "counter" if !value.is_finite() || *value < 0.0 => {
                return Err(format!("counter {name:?} has invalid value {value}"));
            }
            "counter" => {}
            "histogram" => {
                if !value.is_finite() || *value < 0.0 {
                    return Err(format!(
                        "histogram sample {name:?} has invalid value {value}"
                    ));
                }
                let mut key_labels = labels.clone();
                let le = if name.ends_with("_bucket") {
                    let pos = key_labels
                        .iter()
                        .position(|(k, _)| k == "le")
                        .ok_or_else(|| format!("bucket sample of {family:?} missing le label"))?;
                    Some(key_labels.remove(pos).1)
                } else {
                    None
                };
                key_labels.sort();
                let entry = hists.entry((family.to_string(), key_labels)).or_insert((
                    f64::NEG_INFINITY,
                    0.0,
                    false,
                    None,
                ));
                match le {
                    Some(le) => {
                        let bound = if le == "+Inf" {
                            f64::INFINITY
                        } else {
                            le.parse::<f64>()
                                .map_err(|e| format!("bad le bound {le:?}: {e}"))?
                        };
                        if bound <= entry.0 {
                            return Err(format!(
                                "histogram {family:?} buckets out of order at le={le}"
                            ));
                        }
                        if *value < entry.1 {
                            return Err(format!("histogram {family:?} not cumulative at le={le}"));
                        }
                        entry.0 = bound;
                        entry.1 = *value;
                        if bound == f64::INFINITY {
                            entry.2 = true;
                        }
                    }
                    None if name.ends_with("_count") => entry.3 = Some(*value),
                    None => {} // _sum: only the finite/non-negative check above
                }
            }
            _ => {
                // Gauges may be any float, including NaN/Inf.
            }
        }
    }
    for ((family, _), (_, last_cumulative, saw_inf, count)) in &hists {
        if !saw_inf {
            return Err(format!("histogram {family:?} missing +Inf bucket"));
        }
        if let Some(count) = count {
            if count != last_cumulative {
                return Err(format!(
                    "histogram {family:?}: +Inf bucket {last_cumulative} != _count {count}"
                ));
            }
        }
    }
    Ok(())
}

/// Checks that no counter (or histogram bucket/sum/count) series went
/// backwards between two scrapes `prev` and `next` of the same registry.
pub fn lint_monotone(prev: &str, next: &str) -> Result<(), String> {
    let (prev_types, prev_samples) = parse_exposition(prev)?;
    let (_, next_samples) = parse_exposition(next)?;
    let mut seen: BTreeMap<(String, Vec<(String, String)>), f64> = BTreeMap::new();
    for (name, labels, value) in next_samples {
        let mut labels = labels;
        labels.sort();
        seen.insert((name, labels), value);
    }
    for (name, mut labels, value) in prev_samples {
        let monotone = matches!(
            family_of(&name, &prev_types),
            Some((_, "counter" | "histogram"))
        );
        if !monotone {
            continue;
        }
        labels.sort();
        if let Some(next_value) = seen.get(&(name.clone(), labels.clone())) {
            if *next_value < value {
                return Err(format!(
                    "counter {name:?}{labels:?} went backwards: {value} -> {next_value}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_sorted_and_labeled() {
        let r = Registry::new();
        let c = r.counter("er_pi_runs_total", "Runs replayed.", &[("tenant", "acme")]);
        c.add(3);
        let c2 = r.counter("er_pi_runs_total", "Runs replayed.", &[("tenant", "beta")]);
        c2.inc();
        let g = r.gauge("er_pi_queue_depth", "Queued campaigns.", &[]);
        g.set(2.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE er_pi_queue_depth gauge"), "{text}");
        assert!(text.contains("# TYPE er_pi_runs_total counter"), "{text}");
        assert!(
            text.contains("er_pi_runs_total{tenant=\"acme\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("er_pi_runs_total{tenant=\"beta\"} 1"),
            "{text}"
        );
        assert!(text.contains("er_pi_queue_depth 2"), "{text}");
        lint_exposition(&text).expect("lints clean");
    }

    #[test]
    fn re_registration_returns_the_same_cell() {
        let r = Registry::new();
        let a = r.counter("er_pi_x_total", "X.", &[("k", "v")]);
        let b = r.counter("er_pi_x_total", "X.", &[("k", "v")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("er_pi_x_total", "X.", &[]);
        r.gauge("er_pi_x_total", "X.", &[]);
    }

    #[test]
    fn histograms_bucket_logarithmically_and_cumulatively() {
        let r = Registry::new();
        let h = r.histogram("er_pi_lat_us", "Latency.", &[]);
        h.observe_us(0); // le 1
        h.observe_us(1); // le 1
        h.observe_us(3); // le 4
        h.observe_us(1_000_000); // le 2^20
        h.observe_n_us(5, 2); // le 8 twice
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 1_000_014);
        let text = r.render_prometheus();
        assert!(text.contains("er_pi_lat_us_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("er_pi_lat_us_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("er_pi_lat_us_bucket{le=\"8\"} 5"), "{text}");
        assert!(
            text.contains("er_pi_lat_us_bucket{le=\"+Inf\"} 6"),
            "{text}"
        );
        assert!(text.contains("er_pi_lat_us_sum 1000014"), "{text}");
        assert!(text.contains("er_pi_lat_us_count 6"), "{text}");
        lint_exposition(&text).expect("lints clean");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("er_pi_x_total", "X.", &[("name", "a\"b\\c\nd")]);
        let text = r.render_prometheus();
        assert!(text.contains("name=\"a\\\"b\\\\c\\nd\""), "{text}");
        lint_exposition(&text).expect("lints clean");
    }

    #[test]
    fn the_lint_rejects_malformed_expositions() {
        assert!(lint_exposition("er_pi_x_total 1").is_err(), "no TYPE line");
        assert!(
            lint_exposition("# TYPE er_pi_x_total counter\ner_pi_x_total -1").is_err(),
            "negative counter"
        );
        assert!(
            lint_exposition("# TYPE er_pi_x_total widget\ner_pi_x_total 1").is_err(),
            "unknown type"
        );
        assert!(
            lint_exposition(
                "# TYPE er_pi_h histogram\ner_pi_h_bucket{le=\"1\"} 5\ner_pi_h_bucket{le=\"+Inf\"} 3\n"
            )
            .is_err(),
            "non-cumulative buckets"
        );
        assert!(
            lint_exposition("# TYPE er_pi_h histogram\ner_pi_h_bucket{le=\"1\"} 5\n").is_err(),
            "missing +Inf"
        );
        assert!(
            lint_exposition("# TYPE er_pi_x_total counter\ner_pi_x_total{k=\"v} 1").is_err(),
            "unterminated label"
        );
    }

    #[test]
    fn the_monotone_lint_catches_resets() {
        let a = "# TYPE er_pi_x_total counter\ner_pi_x_total{t=\"a\"} 5\n";
        let b = "# TYPE er_pi_x_total counter\ner_pi_x_total{t=\"a\"} 7\n";
        let c = "# TYPE er_pi_x_total counter\ner_pi_x_total{t=\"a\"} 2\n";
        lint_monotone(a, b).expect("5 -> 7 is monotone");
        assert!(lint_monotone(b, c).is_err(), "7 -> 2 is a reset");
        // A series that disappears is fine (new registry / restart detection
        // is out of scope for the lint).
        lint_monotone(a, "# TYPE er_pi_x_total counter\n").expect("absent series ignored");
    }

    #[test]
    fn renders_are_deterministic() {
        let r = Registry::new();
        r.counter("er_pi_b_total", "B.", &[("z", "1")]).inc();
        r.counter("er_pi_b_total", "B.", &[("a", "1")]).inc();
        r.counter("er_pi_a_total", "A.", &[]).inc();
        r.histogram("er_pi_h_us", "H.", &[]).observe_us(7);
        assert_eq!(r.render_prometheus(), r.render_prometheus());
    }
}

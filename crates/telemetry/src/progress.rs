//! Live campaign progress: a lock-free aggregator sampled by replay
//! workers, plus the checkpoint-trie hit-rate monitor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Lock-free progress aggregator shared between the session thread and
/// every pool worker. Workers bump atomic counters as runs finish; anyone
/// can take a [`ProgressSnapshot`] at any time.
#[derive(Debug)]
pub struct Progress {
    started: Instant,
    runs_done: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Runs short-circuited by state-hash subsumption (a subset of
    /// `runs_done` — a subsumed run still completes and is reported).
    subsumed: AtomicU64,
    /// Unit permutations pruned by the sleep-set filter. Behind an `Arc`
    /// so the exploring thread can bump it without holding the aggregator
    /// (see [`Progress::sleep_tally`]).
    sleep_prunes: Arc<AtomicU64>,
    per_worker: Vec<AtomicU64>,
    /// Expected total number of runs, when the campaign is bounded.
    expected_total: Option<u64>,
    /// A-priori whole-campaign projection (seconds), e.g. from
    /// `ResourceProfile::campaign_secs`. Carried into snapshots untouched.
    campaign_secs_hint: Option<f64>,
}

impl Progress {
    /// A fresh aggregator for `workers` replay workers (sequential replay
    /// uses `workers = 1`).
    pub fn new(workers: usize) -> Self {
        Progress {
            started: Instant::now(),
            runs_done: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            subsumed: AtomicU64::new(0),
            sleep_prunes: Arc::new(AtomicU64::new(0)),
            per_worker: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            expected_total: None,
            campaign_secs_hint: None,
        }
    }

    /// Sets the expected number of runs (enables the measured ETA).
    pub fn with_expected_total(mut self, total: Option<u64>) -> Self {
        self.expected_total = total;
        self
    }

    /// Attaches an a-priori campaign-duration projection in seconds.
    pub fn with_campaign_secs(mut self, secs: Option<f64>) -> Self {
        self.campaign_secs_hint = secs;
        self
    }

    /// Records one finished run on `worker`'s tally. `cache_hit` says
    /// whether the run resumed from a checkpoint (`None` when incremental
    /// replay is off); `subsumed` whether state-hash subsumption stitched
    /// the run's tail instead of executing it. Returns the new total, so
    /// callers can trigger periodic work every N runs without a second
    /// load.
    pub fn record_run(&self, worker: usize, cache_hit: Option<bool>, subsumed: bool) -> u64 {
        if let Some(w) = self.per_worker.get(worker) {
            w.fetch_add(1, Ordering::Relaxed);
        }
        match cache_hit {
            Some(true) => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            Some(false) => {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        if subsumed {
            self.subsumed.fetch_add(1, Ordering::Relaxed);
        }
        self.runs_done.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The shared sleep-set prune tally: hand the `Arc` to the explorer
    /// (`ErPiExplorer::set_sleep_tally`) and it shows up live in
    /// [`ProgressSnapshot::sleep_prunes`].
    pub fn sleep_tally(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.sleep_prunes)
    }

    /// Number of workers this aggregator tracks.
    pub fn workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Takes a consistent-enough snapshot (counters are relaxed; exact
    /// cross-counter consistency is not needed for display).
    pub fn snapshot(&self) -> ProgressSnapshot {
        let elapsed = self.started.elapsed().as_secs_f64();
        let runs_done = self.runs_done.load(Ordering::Relaxed);
        let runs_per_sec = if elapsed > 0.0 {
            runs_done as f64 / elapsed
        } else {
            0.0
        };
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let cache_hit_rate = if hits + misses > 0 {
            Some(hits as f64 / (hits + misses) as f64)
        } else {
            None
        };
        // ETA only once throughput is measurable: with zero completed runs
        // (or a zero-elapsed window) the division would fabricate an
        // estimate out of nothing, and the old `Some(0.0)` sentinel leaked
        // "done" into JSON payloads before the first run even finished.
        let eta_secs = match self.expected_total {
            Some(total) if runs_per_sec > 0.0 && total > runs_done => {
                Some((total - runs_done) as f64 / runs_per_sec)
            }
            Some(total) if runs_per_sec > 0.0 && runs_done >= total => Some(0.0),
            _ => None,
        };
        let subsumed_runs = self.subsumed.load(Ordering::Relaxed);
        let subsume_rate = if runs_done > 0 {
            Some(subsumed_runs as f64 / runs_done as f64)
        } else {
            None
        };
        ProgressSnapshot {
            elapsed_secs: elapsed,
            runs_done,
            expected_total: self.expected_total,
            runs_per_sec,
            eta_secs,
            campaign_secs_hint: self.campaign_secs_hint,
            cache_hit_rate,
            subsumed_runs,
            subsume_rate,
            sleep_prunes: self.sleep_prunes.load(Ordering::Relaxed),
            per_worker_runs: self
                .per_worker
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time view of campaign progress, handed to the periodic
/// progress callback installed with `Session::set_progress_hook` and
/// serialized as-is by the campaign server's `GET /campaigns/:id`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgressSnapshot {
    /// Wall-clock seconds since replay started.
    pub elapsed_secs: f64,
    /// Runs completed so far.
    pub runs_done: u64,
    /// Expected total runs (the session cap), when bounded.
    pub expected_total: Option<u64>,
    /// Measured throughput over the whole campaign so far.
    pub runs_per_sec: f64,
    /// Measured time-to-completion estimate, seconds
    /// (`None` when the campaign is unbounded or throughput is still 0).
    pub eta_secs: Option<f64>,
    /// The a-priori projection from `ResourceProfile::campaign_secs`, if
    /// the caller supplied one — useful to compare against the measured
    /// ETA.
    pub campaign_secs_hint: Option<f64>,
    /// Checkpoint-trie hit rate in `[0, 1]` (`None` before any
    /// incremental-replay run finishes).
    pub cache_hit_rate: Option<f64>,
    /// Runs short-circuited by state-hash subsumption so far.
    #[serde(default)]
    pub subsumed_runs: u64,
    /// `subsumed_runs / runs_done` in `[0, 1]` (`None` before the first
    /// run finishes).
    #[serde(default)]
    pub subsume_rate: Option<f64>,
    /// Unit permutations pruned live by the sleep-set filter.
    #[serde(default)]
    pub sleep_prunes: u64,
    /// Runs completed per worker — utilization skew at a glance.
    pub per_worker_runs: Vec<u64>,
}

impl ProgressSnapshot {
    /// Per-worker utilization relative to a perfectly even split, in
    /// `[0, 1]` per worker (1.0 = this worker did an even share or more).
    pub fn worker_utilization(&self) -> Vec<f64> {
        let n = self.per_worker_runs.len();
        if n == 0 || self.runs_done == 0 {
            return vec![0.0; n];
        }
        let fair = self.runs_done as f64 / n as f64;
        self.per_worker_runs
            .iter()
            .map(|&r| (r as f64 / fair).min(1.0))
            .collect()
    }
}

/// Watches the checkpoint-trie hit rate over fixed windows of runs and
/// produces a one-line warning the first time a window degrades below the
/// threshold — surfacing a misconfigured cache budget instead of letting
/// replay silently fall back to scratch execution.
#[derive(Debug)]
pub struct HitRateMonitor {
    window: u64,
    threshold: f64,
    hits: u64,
    seen: u64,
    warned: bool,
}

/// Runs per observation window of the default monitor.
pub const HIT_RATE_WINDOW: u64 = 1_000;
/// Hit-rate floor below which the default monitor warns.
pub const HIT_RATE_THRESHOLD: f64 = 0.10;

impl Default for HitRateMonitor {
    fn default() -> Self {
        HitRateMonitor::new(HIT_RATE_WINDOW, HIT_RATE_THRESHOLD)
    }
}

impl HitRateMonitor {
    /// A monitor warning when a `window`-run window's hit rate is below
    /// `threshold`.
    pub fn new(window: u64, threshold: f64) -> Self {
        HitRateMonitor {
            window: window.max(1),
            threshold,
            hits: 0,
            seen: 0,
            warned: false,
        }
    }

    /// Records one run (`hit` = resumed from a checkpoint). Returns the
    /// warning message when a completed window first falls below the
    /// threshold; at most one warning per monitor.
    pub fn record(&mut self, hit: bool) -> Option<String> {
        self.seen += 1;
        if hit {
            self.hits += 1;
        }
        if self.seen < self.window {
            return None;
        }
        let rate = self.hits as f64 / self.seen as f64;
        let fired = !self.warned && rate < self.threshold;
        self.hits = 0;
        self.seen = 0;
        if fired {
            self.warned = true;
            Some(format!(
                "checkpoint-trie hit rate {:.1}% over the last {} runs (threshold {:.0}%); \
                 consider raising set_cache_budget",
                rate * 100.0,
                self.window,
                self.threshold * 100.0
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_counts_runs_and_cache_hits() {
        let p = Progress::new(2).with_expected_total(Some(10));
        assert_eq!(p.record_run(0, Some(true), true), 1);
        assert_eq!(p.record_run(1, Some(false), false), 2);
        assert_eq!(p.record_run(1, None, false), 3);
        let s = p.snapshot();
        assert_eq!(s.runs_done, 3);
        assert_eq!(s.per_worker_runs, vec![1, 2]);
        assert_eq!(s.cache_hit_rate, Some(0.5));
        assert_eq!(s.expected_total, Some(10));
        assert!(s.eta_secs.is_some());
    }

    #[test]
    fn snapshot_without_incremental_has_no_hit_rate() {
        let p = Progress::new(1);
        p.record_run(0, None, false);
        let s = p.snapshot();
        assert_eq!(s.cache_hit_rate, None);
        assert_eq!(s.eta_secs, None);
    }

    #[test]
    fn eta_is_absent_until_throughput_is_measurable() {
        // A bounded campaign with zero completed runs used to report
        // `Some(0.0)` — indistinguishable from "finished" — and a zero
        // elapsed window divides by zero. Both must yield no estimate.
        let p = Progress::new(1).with_expected_total(Some(100));
        let s = p.snapshot();
        assert_eq!(s.runs_done, 0);
        assert_eq!(s.eta_secs, None, "no runs done yet: no ETA");
        assert!(
            s.eta_secs.is_none_or(f64::is_finite),
            "ETA must never be inf/NaN"
        );
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let p = Progress::new(2).with_expected_total(Some(8));
        p.record_run(0, Some(true), true);
        p.record_run(1, Some(false), false);
        let s = p.snapshot();
        let json = serde_json::to_string(&s).expect("snapshot serializes");
        let back: ProgressSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        assert_eq!(back.runs_done, s.runs_done);
        assert_eq!(back.per_worker_runs, s.per_worker_runs);
        assert_eq!(back.expected_total, s.expected_total);
        assert_eq!(back.cache_hit_rate, s.cache_hit_rate);
    }

    #[test]
    fn out_of_range_worker_index_is_tolerated() {
        let p = Progress::new(1);
        p.record_run(7, None, false);
        assert_eq!(p.snapshot().runs_done, 1);
    }

    #[test]
    fn utilization_is_relative_to_even_split() {
        let p = Progress::new(2);
        for _ in 0..3 {
            p.record_run(0, None, false);
        }
        p.record_run(1, None, false);
        let u = p.snapshot().worker_utilization();
        assert_eq!(u[0], 1.0);
        assert_eq!(u[1], 0.5);
    }

    #[test]
    fn monitor_warns_once_on_a_cold_window() {
        let mut m = HitRateMonitor::new(10, 0.10);
        for i in 0..9 {
            assert_eq!(m.record(false), None, "run {i}");
        }
        let msg = m.record(false).expect("window completed cold");
        assert!(msg.contains("0.0%"), "{msg}");
        assert!(msg.contains("set_cache_budget"), "{msg}");
        // Second cold window stays quiet: warn-once.
        for _ in 0..10 {
            assert_eq!(m.record(false), None);
        }
    }

    #[test]
    fn monitor_stays_quiet_above_threshold() {
        let mut m = HitRateMonitor::new(10, 0.10);
        for i in 0..20 {
            assert_eq!(m.record(i % 2 == 0), None);
        }
    }

    #[test]
    fn windows_are_independent() {
        let mut m = HitRateMonitor::new(10, 0.5);
        // First window warm, second cold: the warning fires on the second.
        for _ in 0..10 {
            assert_eq!(m.record(true), None);
        }
        for _ in 0..9 {
            assert_eq!(m.record(false), None);
        }
        assert!(m.record(false).is_some());
    }
}

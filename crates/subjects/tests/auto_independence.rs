//! Ground truth for the static analysis pass on the evaluation subjects.
//!
//! Three claims are checked against the real subject workloads:
//!
//! 1. The independence knowledge the bug catalogue used to hand-declare
//!    (ReplicaDB's disjoint-key put batch) is *derived* by the analysis.
//! 2. Every catalogue bug still reproduces under ER-π when the
//!    hand-declared independent sets and interference pairs are deleted
//!    and replaced by the auto-derived ones — zero hand declarations.
//! 3. The pre-replay lint pass statically flags the Table 2 misconception
//!    patterns on the seeded subject workloads, before any interleaving
//!    is replayed.

use std::collections::BTreeSet;

use er_pi::{analyze, Session};
use er_pi_model::{ReplicaId, Value};
use er_pi_rdl::TieBreak;
use er_pi_subjects::{Bug, CrdtsModel, RoshiModel};

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

#[test]
fn replicadb_hand_declared_sets_are_derived() {
    let bug = Bug::by_name("ReplicaDB-1").expect("catalogue entry");
    let hand = &bug.pruning_config().independent_sets;
    assert!(
        !hand.is_empty(),
        "ReplicaDB-1 is the catalogue's hand-declared independence example"
    );

    let analysis = analyze(bug.workload());
    for set in hand {
        let mut want = set.clone();
        want.sort_unstable();
        assert!(
            analysis
                .independence
                .sets
                .iter()
                .any(|derived| want.iter().all(|e| derived.contains(e))),
            "hand-declared set {want:?} not covered by derived sets {:?}",
            analysis.independence.sets
        );
    }
}

#[test]
fn catalogue_reproduces_with_auto_derived_independence() {
    for bug in Bug::catalogue() {
        // Start from the bug's config with every hand declaration removed,
        // then absorb what the static analysis derives from the trace.
        let mut config = bug.pruning_config().clone();
        config.independent_sets.clear();
        config.interference.clear();
        config.absorb(analyze(bug.workload()).to_pruning_config());

        let repro = bug.reproduce_with_config(config, 10_000);
        assert!(
            repro.reproduced(),
            "{} must still reproduce with auto-derived independence \
             (explored {})",
            bug.name,
            repro.explored
        );
    }
}

#[test]
fn analysis_covers_every_catalogue_workload() {
    for bug in Bug::catalogue() {
        let analysis = analyze(bug.workload());
        let db = analysis.database();
        assert!(
            db.relation_len("ev_replica") == bug.workload().len(),
            "{}: every event must be profiled into the fact base",
            bug.name
        );
    }
}

/// Collects the misconception numbers the lint pass flags for a recorded
/// session.
fn flagged<M: er_pi::SystemModel>(session: &Session<M>) -> BTreeSet<u8> {
    session
        .analyze()
        .expect("workload recorded")
        .diagnostics
        .iter()
        .map(|d| d.misconception)
        .collect()
}

#[test]
fn lint_flags_racing_deliveries_on_roshi() {
    // Roshi Table-2 cell #1: two writers race into replica 0 through
    // independent sync messages.
    let mut session = Session::new(RoshiModel::with_tie(3, TieBreak::LastApplied));
    session.record(|sys| {
        let i1 = sys.invoke(
            r(1),
            "insert",
            [Value::from("k"), Value::from("m"), Value::from(50)],
        );
        let d2 = sys.invoke(
            r(2),
            "delete",
            [Value::from("k"), Value::from("m"), Value::from(50)],
        );
        sys.sync_split(r(1), r(0), Some(i1));
        sys.sync_split(r(2), r(0), Some(d2));
    });
    assert!(
        flagged(&session).contains(&1),
        "misconception 1 must be flagged"
    );
}

#[test]
fn lint_flags_concurrent_list_edits_on_crdts() {
    // Crdts Table-2 cell #2: concurrent pushes at different replicas.
    let mut session = Session::new(CrdtsModel::new(2));
    session.record(|sys| {
        let p0 = sys.invoke(r(0), "list_push", [Value::from(10)]);
        sys.sync(r(0), r(1), p0);
        sys.invoke(r(1), "list_push", [Value::from(20)]);
        sys.invoke(r(0), "list_push", [Value::from(30)]);
        sys.sync_untracked(r(1), r(0));
        sys.sync_untracked(r(0), r(1));
    });
    assert!(
        flagged(&session).contains(&2),
        "misconception 2 must be flagged"
    );
}

#[test]
fn lint_flags_unsafe_moves_on_crdts() {
    // Crdts Table-2 cell #3: concurrent naive list moves.
    let mut session = Session::new(CrdtsModel::new(2));
    session.record(|sys| {
        for v in [10, 20, 30] {
            sys.invoke(r(0), "list_push", [Value::from(v)]);
        }
        sys.sync_untracked(r(0), r(1));
        sys.invoke(r(0), "list_move_naive", [Value::from(0), Value::from(2)]);
        sys.invoke(r(1), "list_move_naive", [Value::from(0), Value::from(1)]);
        sys.sync_untracked(r(0), r(1));
        sys.sync_untracked(r(1), r(0));
    });
    assert!(
        flagged(&session).contains(&3),
        "misconception 3 must be flagged"
    );
}

#[test]
fn lint_flags_racing_id_mints_on_crdts() {
    // Crdts Table-2 cell #4: both replicas mint the next to-do id.
    let mut session = Session::new(CrdtsModel::new(2));
    session.record(|sys| {
        sys.invoke(r(0), "todo_create", [Value::from("buy milk")]);
        sys.invoke(r(1), "todo_create", [Value::from("walk dog")]);
        sys.sync_untracked(r(0), r(1));
        sys.sync_untracked(r(1), r(0));
    });
    assert!(
        flagged(&session).contains(&4),
        "misconception 4 must be flagged"
    );
}

#[test]
fn lint_flags_uncoordinated_writes_on_crdts() {
    // Crdts Table-2 cell #5: replica 0 writes without coordinating while
    // remote updates race in.
    let mut session = Session::new(CrdtsModel::new(3));
    session.record(|sys| {
        let u1 = sys.invoke(r(1), "counter_inc", [Value::from(1)]);
        sys.sync(r(1), r(0), u1);
        sys.invoke(r(2), "counter_inc", [Value::from(2)]);
        sys.invoke(r(0), "reg_set", [Value::from(7)]);
        sys.sync_untracked(r(2), r(0));
    });
    assert!(
        flagged(&session).contains(&5),
        "misconception 5 must be flagged"
    );
}

#[test]
fn lint_coverage_spans_the_misconception_table() {
    // Acceptance floor: the lint pass flags at least three of the five
    // misconception patterns across the subject workloads (the per-pattern
    // tests above pin each individually).
    let mut covered = BTreeSet::new();

    let mut session = Session::new(CrdtsModel::new(3));
    session.record(|sys| {
        let u1 = sys.invoke(r(1), "reg_set", [Value::from(1)]);
        let u2 = sys.invoke(r(2), "reg_set", [Value::from(2)]);
        sys.sync_split(r(1), r(0), Some(u1));
        sys.sync_split(r(2), r(0), Some(u2));
    });
    covered.extend(flagged(&session));

    let mut session = Session::new(CrdtsModel::new(2));
    session.record(|sys| {
        sys.invoke(r(0), "todo_create", [Value::from("a")]);
        sys.invoke(r(1), "todo_create", [Value::from("b")]);
        sys.invoke(r(0), "list_move_naive", [Value::from(0), Value::from(1)]);
    });
    covered.extend(flagged(&session));

    assert!(
        covered.len() >= 3,
        "lints must flag at least 3 of 5 misconceptions, got {covered:?}"
    );
}

//! Soundness properties of the auto-derived independence.
//!
//! The static analysis promises: two interleavings merged by the derived
//! independent sets (under the derived interference relation) reach
//! identical final states. Equivalently, replaying only the canonical
//! representatives loses no distinct outcome. These properties check that
//! promise on randomized workloads over the `crdts` subject model, which
//! exercises counters, LWW registers, OR-sets, RGA lists, and id minting.

use std::collections::BTreeSet;

use proptest::prelude::*;

use er_pi::{ExploreMode, Session, TestSuite};
use er_pi_model::{ReplicaId, Value, Workload};
use er_pi_subjects::CrdtsModel;

/// Update vocabulary drawn from: each op name lands in a different CRDT
/// family in the analysis' commutativity table.
const OPS: [&str; 6] = [
    "counter_inc",
    "counter_dec",
    "reg_set",
    "list_push",
    "set_add",
    "todo_create",
];

#[derive(Debug, Clone)]
enum Step {
    Op(u16, usize, i64),
    Sync(u16, u16),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..3, 0usize..OPS.len(), 1i64..5).prop_map(|(r, o, v)| Step::Op(r, o, v)),
            (0u16..3, 0u16..3).prop_map(|(f, t)| Step::Sync(f, t)),
        ],
        1..6,
    )
}

fn build_workload(steps: &[Step]) -> Workload {
    let mut w = Workload::builder();
    let mut last_update = None;
    for step in steps {
        match step {
            Step::Op(r, o, v) => {
                last_update = Some(w.update(ReplicaId::new(*r), OPS[*o], [Value::from(*v)]));
            }
            Step::Sync(f, t) if f != t => {
                let (from, to) = (ReplicaId::new(*f), ReplicaId::new(*t));
                match last_update {
                    Some(u) => {
                        w.sync_pair(from, to, u);
                    }
                    None => {
                        w.sync_untracked(from, to);
                    }
                }
            }
            Step::Sync(..) => {}
        }
    }
    w.build()
}

/// Replays the workload in ER-π mode and returns the explored count plus
/// the set of distinct run outcomes (final observations + failure count).
fn outcomes(workload: &Workload, auto: bool) -> (usize, BTreeSet<(Vec<Value>, usize)>) {
    let mut session = Session::new(CrdtsModel::new(3));
    session.set_workload(workload.clone());
    session.set_mode(ExploreMode::ErPi);
    session.set_keep_runs(true);
    session.set_cap(100_000);
    session.set_auto_independence(auto);
    let report = session.replay(&TestSuite::new()).unwrap();
    let set = report
        .runs
        .iter()
        .map(|run| (run.observations.clone(), run.failed_ops))
        .collect();
    (report.explored, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: exploring only the canonical representatives of the
    /// auto-derived independence classes yields exactly the same set of
    /// final outcomes as the un-merged exploration — merging never hides
    /// a distinct final state (and never invents one).
    #[test]
    fn auto_derived_merging_preserves_the_outcome_set(steps in arb_steps()) {
        let workload = build_workload(&steps);
        let (n_base, base) = outcomes(&workload, false);
        let (n_auto, auto) = outcomes(&workload, true);
        prop_assert!(
            n_auto <= n_base,
            "derived independence may only prune ({n_auto} > {n_base})"
        );
        prop_assert_eq!(auto, base, "merging lost or invented an outcome");
    }

    /// The derived relations are well-formed: independent sets hold at
    /// least two trace events each, and every interference pair points at
    /// a member of some set.
    #[test]
    fn derived_relations_are_well_formed(steps in arb_steps()) {
        let workload = build_workload(&steps);
        let analysis = er_pi::analyze(&workload);
        let members: BTreeSet<_> = analysis
            .independence
            .sets
            .iter()
            .flatten()
            .copied()
            .collect();
        for set in &analysis.independence.sets {
            prop_assert!(set.len() >= 2, "singleton set survived: {set:?}");
            for id in set {
                prop_assert!(id.index() < workload.len(), "unknown event {id:?}");
            }
        }
        for (x, y) in &analysis.independence.interference {
            prop_assert!(members.contains(y), "interference targets non-member {y:?}");
            prop_assert!(x.index() < workload.len(), "unknown interferer {x:?}");
        }
    }
}

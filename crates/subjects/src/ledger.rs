//! A replicated append-only ledger with the *exactly-once delivery*
//! misconception seeded in its sync path.
//!
//! The application keeps, per replica, a durable log of its own credits and
//! a volatile list of every ledger entry it has applied (own + received).
//! Shipping an entry appends it at the receiver **without deduplication** —
//! the developer assumed the transport delivers each sync exactly once.
//!
//! Under fault-free replay that assumption is unfalsifiable: every `Sync`
//! event executes exactly once in every interleaving, so no order of the
//! same workload ever double-applies an entry (an aggressive order can only
//! make the sync *fail* with "nothing to ship yet", which Algorithm 4 prunes
//! around). Only a scheduled [`Duplicate`](er_pi_model::FaultKind::Duplicate)
//! delivery exposes the missing idempotence check — the bug class fault
//! schedules exist for.

use er_pi::{OpOutcome, SystemModel};
use er_pi_model::{CanonicalEncode, Event, EventId, EventKind, ReplicaId, Value};

/// One replica of the ledger application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LedgerState {
    /// Durable: credits issued at this replica, in issue order. This is the
    /// op log a crash-restart recovers from.
    pub log: Vec<(EventId, i64)>,
    /// Volatile: every entry applied here (own credits + received ones),
    /// in application order. Duplicated [`EventId`]s are the bug.
    pub entries: Vec<(EventId, i64)>,
}

impl LedgerState {
    /// The replica's balance: the sum of all applied entries.
    pub fn balance(&self) -> i64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// The first entry id applied more than once, if any — the observable
    /// footprint of a double delivery.
    pub fn duplicated_entry(&self) -> Option<EventId> {
        self.entries
            .iter()
            .enumerate()
            .find(|(i, (id, _))| self.entries[..*i].iter().any(|(seen, _)| seen == id))
            .map(|(_, (id, _))| *id)
    }
}

/// The ledger subject model.
///
/// Operation vocabulary: `credit(amount)` appends a ledger entry at the
/// event's replica. A fused `Sync { of }` ships the entry created by `of`
/// to the receiver, appending it blindly (the seeded bug); it fails with
/// "nothing to ship yet" while the sender has not applied `of`.
#[derive(Debug, Clone)]
pub struct LedgerApp {
    replicas: usize,
}

impl LedgerApp {
    /// Creates the model.
    pub fn new(replicas: usize) -> Self {
        LedgerApp { replicas }
    }
}

impl SystemModel for LedgerApp {
    type State = LedgerState;

    fn replicas(&self) -> usize {
        self.replicas
    }

    fn init(&self, _replica: ReplicaId) -> LedgerState {
        LedgerState::default()
    }

    fn apply(&self, states: &mut [LedgerState], event: &Event) -> OpOutcome {
        let at = event.replica.index();
        match &event.kind {
            EventKind::LocalUpdate { op } => match op.function() {
                "credit" => {
                    let Some(v) = op.arg(0).and_then(Value::as_int) else {
                        return OpOutcome::failed("credit needs an amount");
                    };
                    states[at].log.push((event.id, v));
                    states[at].entries.push((event.id, v));
                    OpOutcome::Applied
                }
                other => OpOutcome::failed(format!("unknown ledger op {other}")),
            },
            EventKind::Sync { to, of } => {
                let Some(of) = *of else {
                    return OpOutcome::failed("ledger syncs ship one tracked entry");
                };
                let Some(&(id, v)) = states[at].entries.iter().find(|(id, _)| *id == of) else {
                    return OpOutcome::failed("nothing to ship yet");
                };
                // The seeded bug: append without checking whether the
                // receiver already holds `id` — "the network delivers each
                // sync exactly once".
                states[to.index()].entries.push((id, v));
                OpOutcome::Applied
            }
            _ => OpOutcome::failed("unsupported event kind for the ledger"),
        }
    }

    /// Crash-restart recovery replays the durable credit log into a fresh
    /// state; received entries were volatile and are lost until re-synced.
    fn recover(&self, states: &mut [LedgerState], replica: ReplicaId) {
        let log = std::mem::take(&mut states[replica.index()].log);
        states[replica.index()] = LedgerState {
            entries: log.clone(),
            log,
        };
    }

    fn observe(&self, state: &LedgerState) -> Value {
        let entries: Value = state
            .entries
            .iter()
            .map(|(id, v)| Value::List(vec![Value::from(i64::from(id.raw())), Value::from(*v)]))
            .collect();
        Value::List(vec![Value::from(state.balance()), entries])
    }

    fn state_encode(&self, state: &LedgerState, out: &mut Vec<u8>) -> bool {
        state.log.encode_canonical(out);
        state.entries.encode_canonical(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::Workload;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn workload() -> Workload {
        let mut w = Workload::builder();
        let c = w.update(r(0), "credit", [Value::from(100)]);
        w.sync_pair(r(0), r(1), c);
        w.build()
    }

    #[test]
    fn fault_free_sync_applies_each_entry_once() {
        let model = LedgerApp::new(2);
        let mut states = model.init_all();
        for ev in workload().events() {
            model.apply(&mut states, ev);
        }
        assert_eq!(states[1].balance(), 100);
        assert_eq!(states[1].duplicated_entry(), None);
    }

    #[test]
    fn sync_before_credit_is_a_failed_op() {
        let model = LedgerApp::new(2);
        let w = workload();
        let mut states = model.init_all();
        let sync = w.event(EventId::new(1));
        assert_eq!(
            model.apply(&mut states, sync),
            OpOutcome::failed("nothing to ship yet")
        );
        assert_eq!(states[1].entries.len(), 0);
    }

    #[test]
    fn double_applied_sync_duplicates_the_entry() {
        // What a scheduled Duplicate fault does at replay time.
        let model = LedgerApp::new(2);
        let w = workload();
        let mut states = model.init_all();
        model.apply(&mut states, w.event(EventId::new(0)));
        let sync = w.event(EventId::new(1));
        model.apply(&mut states, sync);
        model.apply(&mut states, sync);
        assert_eq!(states[1].duplicated_entry(), Some(EventId::new(0)));
        assert_eq!(states[1].balance(), 200, "the balance double-counts");
    }

    #[test]
    fn recovery_replays_the_durable_log_only() {
        let model = LedgerApp::new(2);
        let w = workload();
        let mut states = model.init_all();
        for ev in w.events() {
            model.apply(&mut states, ev);
        }
        // Replica 1 holds one received entry and no own credits.
        assert_eq!(states[1].entries.len(), 1);
        model.recover(&mut states, r(1));
        assert_eq!(states[1].entries.len(), 0, "received entries are volatile");
        // Replica 0's own credit survives the crash via log replay.
        model.recover(&mut states, r(0));
        assert_eq!(states[0].entries, vec![(EventId::new(0), 100)]);
        assert_eq!(states[0].balance(), 100);
    }
}

//! Subject 2 — OrbitDB: a serverless, peer-to-peer, Merkle-CRDT log
//! database (paper §6, Subject 2).

use std::collections::{BTreeSet, VecDeque};

use er_pi::{OpOutcome, SystemModel};
use er_pi_model::{CanonicalEncode, Event, EventKind, ReplicaId, Value};
use er_pi_rdl::{DeltaSync, LogEntry, LogSortOrder, MerkleLog};

/// Static configuration of the OrbitDB subject.
#[derive(Debug, Clone)]
pub struct OrbitConfig {
    /// Read-side linearization ([`LogSortOrder::ClockOnly`] is the OrbitDB-1
    /// defect surface).
    pub sort: LogSortOrder,
    /// Clock-skew rejection threshold (OrbitDB-2's halt symptom), if any.
    pub max_clock_skew: Option<u64>,
    /// Writer identity per replica (identical identities trigger the
    /// OrbitDB-1 tie).
    pub identities: Vec<String>,
    /// Ship only *head* entries on `SyncSend` (real OrbitDB announces heads
    /// and fetches ancestors separately) — the OrbitDB-4 defect surface:
    /// heads can arrive whose parents were never fetched.
    pub heads_only_sync: bool,
}

impl Default for OrbitConfig {
    fn default() -> Self {
        OrbitConfig {
            sort: LogSortOrder::ClockThenIdentity,
            max_clock_skew: None,
            identities: vec!["id-a".into(), "id-b".into(), "id-c".into()],
            heads_only_sync: false,
        }
    }
}

/// One OrbitDB replica.
#[derive(Debug, Clone)]
pub struct OrbitState {
    /// The replicated Merkle log.
    pub log: MerkleLog,
    /// Pending sync payloads.
    pub inbox: VecDeque<Vec<LogEntry>>,
    /// Identities currently granted write access.
    pub access: BTreeSet<String>,
    /// Cached access snapshot — the stale-cache surface of OrbitDB-3
    /// ("could not append entry although write access is granted").
    pub access_cache: Option<BTreeSet<String>>,
    /// Appends rejected by the access check.
    pub rejected_appends: u32,
    /// Whether the repo folder lock is currently held.
    pub repo_locked: bool,
    /// Whether a close ran while a sync was still in flight, leaving the
    /// lock behind — the OrbitDB-5 symptom ("repo folder keeps getting
    /// locked").
    pub lock_stuck: bool,
    /// Whether an executed sync is still unflushed (an operation "in
    /// progress" from the repo lock's point of view).
    pub busy: bool,
    /// Number of `open_repo` calls refused because the lock was stuck.
    pub failed_opens: u32,
}

/// The OrbitDB subject model.
///
/// Operation vocabulary:
///
/// * `append(payload)` — appends if the (possibly cached) access controller
///   grants this replica's identity,
/// * `grant(identity)` / `revoke(identity)` — mutate the access controller,
/// * `cache_access()` — snapshot the controller into the cache,
/// * `poison_clock(t)` — force the local Lamport clock (OrbitDB-2),
/// * `open_repo()` / `close_repo()` — take / release the repo folder lock;
///   closing with an in-flight sync leaves the lock stuck (OrbitDB-5).
#[derive(Debug, Clone)]
pub struct OrbitModel {
    replicas: usize,
    config: OrbitConfig,
}

impl OrbitModel {
    /// Creates the model with the default (correct) configuration.
    pub fn new(replicas: usize) -> Self {
        OrbitModel {
            replicas,
            config: OrbitConfig::default(),
        }
    }

    /// Creates the model with an explicit configuration.
    pub fn with_config(replicas: usize, config: OrbitConfig) -> Self {
        OrbitModel { replicas, config }
    }
}

impl SystemModel for OrbitModel {
    type State = OrbitState;

    fn replicas(&self) -> usize {
        self.replicas
    }

    fn init(&self, replica: ReplicaId) -> OrbitState {
        let identity = self
            .config
            .identities
            .get(replica.index())
            .cloned()
            .unwrap_or_else(|| format!("id-{}", replica.index()));
        let mut log = MerkleLog::new(replica, identity.clone());
        log.set_sort_order(self.config.sort);
        log.set_max_clock_skew(self.config.max_clock_skew);
        let mut access = BTreeSet::new();
        access.insert(identity);
        OrbitState {
            log,
            inbox: VecDeque::new(),
            access,
            access_cache: None,
            rejected_appends: 0,
            repo_locked: false,
            lock_stuck: false,
            busy: false,
            failed_opens: 0,
        }
    }

    fn apply(&self, states: &mut [OrbitState], event: &Event) -> OpOutcome {
        let at = event.replica.index();
        match &event.kind {
            EventKind::LocalUpdate { op } => match op.function() {
                "append" => {
                    let payload = op.arg(0).cloned().unwrap_or(Value::Null);
                    let state = &mut states[at];
                    let identity = state.log.identity().to_owned();
                    let granted = state
                        .access_cache
                        .as_ref()
                        .unwrap_or(&state.access)
                        .contains(&identity);
                    if !granted {
                        state.rejected_appends += 1;
                        return OpOutcome::failed(format!(
                            "could not append entry: {identity} not in (cached) access list"
                        ));
                    }
                    state.log.append(payload);
                    OpOutcome::Applied
                }
                "grant" => {
                    let id = op.arg(0).and_then(Value::as_str).unwrap_or("").to_owned();
                    states[at].access.insert(id);
                    OpOutcome::Applied
                }
                "revoke" => {
                    let id = op.arg(0).and_then(Value::as_str).unwrap_or("").to_owned();
                    states[at].access.remove(&id);
                    OpOutcome::Applied
                }
                "cache_access" => {
                    states[at].access_cache = Some(states[at].access.clone());
                    OpOutcome::Applied
                }
                "poison_clock" => {
                    let t = op.arg(0).and_then(Value::as_int).unwrap_or(0) as u64;
                    states[at].log.force_clock(t);
                    OpOutcome::Applied
                }
                "fetch" => {
                    // Resolve dangling references by pulling the missing
                    // entries (and their ancestors) from a peer's log.
                    let Some(from) = op.arg(0).and_then(Value::as_int) else {
                        return OpOutcome::failed("fetch needs a peer replica index");
                    };
                    let from = from as usize;
                    if from >= states.len() {
                        return OpOutcome::failed("fetch peer out of range");
                    }
                    let peer = states[from].log.clone();
                    let mut pulled = 0usize;
                    loop {
                        let missing = states[at].log.dangling_refs();
                        let mut progressed = false;
                        for hash in missing {
                            if let Some(entry) = peer.entry(hash) {
                                states[at].log.apply_op(&entry.clone());
                                pulled += 1;
                                progressed = true;
                            }
                        }
                        if !progressed {
                            break;
                        }
                    }
                    OpOutcome::Observed(Value::from(pulled as i64))
                }
                "audit" => {
                    let values: Value = states[at].log.values().into_iter().cloned().collect();
                    OpOutcome::Observed(values)
                }
                "open_repo" => {
                    let state = &mut states[at];
                    if state.lock_stuck || state.repo_locked {
                        state.failed_opens += 1;
                        OpOutcome::failed("repo folder is locked")
                    } else {
                        state.repo_locked = true;
                        OpOutcome::Applied
                    }
                }
                "flush" => {
                    states[at].busy = false;
                    OpOutcome::Applied
                }
                "close_repo" => {
                    let state = &mut states[at];
                    if !state.repo_locked {
                        return OpOutcome::failed("close without open");
                    }
                    state.repo_locked = false;
                    if !state.inbox.is_empty() || state.busy {
                        // Closing with a sync still in flight (queued or
                        // executed-but-unflushed): the lock file is left
                        // behind.
                        state.lock_stuck = true;
                    }
                    OpOutcome::Applied
                }
                other => OpOutcome::failed(format!("unknown orbitdb op {other}")),
            },
            EventKind::Sync { to, .. } => {
                let snapshot = states[at].log.clone();
                states[to.index()].log.sync_from(&snapshot);
                OpOutcome::Applied
            }
            EventKind::SyncSend { to, .. } => {
                let entries = if self.config.heads_only_sync {
                    let heads = states[at].log.heads();
                    heads
                        .into_iter()
                        .filter_map(|h| states[at].log.entry(h).cloned())
                        .collect()
                } else {
                    let receiver_version = states[to.index()].log.version().clone();
                    states[at].log.missing_since(&receiver_version)
                };
                states[to.index()].inbox.push_back(entries);
                OpOutcome::Applied
            }
            EventKind::SyncExec { .. } => match states[at].inbox.pop_front() {
                Some(entries) => {
                    for e in &entries {
                        states[at].log.apply_op(e);
                    }
                    states[at].busy = true;
                    OpOutcome::Applied
                }
                None => OpOutcome::failed("sync exec with empty inbox"),
            },
            EventKind::External { label } => {
                OpOutcome::failed(format!("unsupported external event {label}"))
            }
        }
    }

    fn observe(&self, state: &OrbitState) -> Value {
        let values: Value = state.log.values().into_iter().cloned().collect();
        Value::List(vec![
            values,
            Value::from(state.log.verify()),
            Value::from(i64::from(state.rejected_appends)),
            Value::from(state.lock_stuck),
            Value::from(i64::from(state.log.rejected_count() as u32)),
        ])
    }

    fn state_encode(&self, state: &OrbitState, out: &mut Vec<u8>) -> bool {
        // The access controller, its (possibly stale) cache, and the repo
        // lock flags all steer future appends/opens, so they are part of
        // behavioral state alongside the Merkle log and the sync inbox.
        state.log.encode_canonical(out);
        state.inbox.encode_canonical(out);
        state.access.encode_canonical(out);
        state.access_cache.encode_canonical(out);
        state.rejected_appends.encode_canonical(out);
        state.repo_locked.encode_canonical(out);
        state.lock_stuck.encode_canonical(out);
        state.busy.encode_canonical(out);
        state.failed_opens.encode_canonical(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::Workload;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn apply_all(model: &OrbitModel, w: &Workload) -> Vec<OrbitState> {
        let mut states = model.init_all();
        for ev in w.events() {
            model.apply(&mut states, ev);
        }
        states
    }

    #[test]
    fn append_and_sync_converge() {
        let model = OrbitModel::new(2);
        let mut w = Workload::builder();
        let a1 = w.update(r(0), "append", [Value::from("x")]);
        w.sync_pair(r(0), r(1), a1);
        let w = w.build();
        let states = apply_all(&model, &w);
        assert_eq!(states[1].log.len(), 1);
        assert!(states[1].log.verify());
    }

    #[test]
    fn stale_access_cache_rejects_granted_writer() {
        // OrbitDB-3 distilled: grant happens, but the replica cached the
        // old controller.
        let model = OrbitModel::with_config(
            2,
            OrbitConfig {
                identities: vec!["w".into(), "w".into()],
                ..OrbitConfig::default()
            },
        );
        let mut states = model.init_all();
        // Replica 0 revokes itself, caches, then re-grants — the cache is
        // stale and still denies.
        let mut w = Workload::builder();
        let revoke = w.update(r(0), "revoke", [Value::from("w")]);
        let cache = w.update(r(0), "cache_access", [Value::Null; 0]);
        let grant = w.update(r(0), "grant", [Value::from("w")]);
        let append = w.update(r(0), "append", [Value::from("data")]);
        let w = w.build();
        for ev in [revoke, cache, grant, append] {
            model.apply(&mut states, w.event(ev));
        }
        assert_eq!(states[0].rejected_appends, 1, "write denied despite grant");
    }

    #[test]
    fn poisoned_clock_halts_peer_progress() {
        let model = OrbitModel::with_config(
            2,
            OrbitConfig {
                max_clock_skew: Some(1_000),
                ..OrbitConfig::default()
            },
        );
        let mut w = Workload::builder();
        let poison = w.update(r(0), "poison_clock", [Value::from(9_999_999)]);
        let append = w.update(r(0), "append", [Value::from("future")]);
        let sync = w.sync_pair(r(0), r(1), append);
        let w = w.build();
        let mut states = model.init_all();
        for ev in [poison, append, sync] {
            model.apply(&mut states, w.event(ev));
        }
        assert_eq!(states[1].log.len(), 0, "entry rejected for skew");
        assert_eq!(states[1].log.rejected_count(), 1);
    }

    #[test]
    fn close_with_inflight_sync_leaves_lock_stuck() {
        let model = OrbitModel::new(2);
        let mut w = Workload::builder();
        let open = w.update(r(1), "open_repo", [Value::Null; 0]);
        let a = w.update(r(0), "append", [Value::from("x")]);
        let send = w.sync_send(r(0), r(1), Some(a));
        let close = w.update(r(1), "close_repo", [Value::Null; 0]);
        let reopen = w.update(r(1), "open_repo", [Value::Null; 0]);
        let w = w.build();
        let mut states = model.init_all();
        for ev in [open, a, send, close] {
            let out = model.apply(&mut states, w.event(ev));
            assert!(!out.is_failed(), "{out:?}");
        }
        assert!(states[1].lock_stuck);
        let out = model.apply(&mut states, w.event(reopen));
        assert!(out.is_failed(), "repo remains locked");
    }

    #[test]
    fn identity_tie_with_clock_only_sort_diverges() {
        let model = OrbitModel::with_config(
            2,
            OrbitConfig {
                sort: LogSortOrder::ClockOnly,
                identities: vec!["same".into(), "same".into()],
                ..OrbitConfig::default()
            },
        );
        let mut w = Workload::builder();
        let a0 = w.update(r(0), "append", [Value::from("from-0")]);
        let a1 = w.update(r(1), "append", [Value::from("from-1")]);
        w.sync_pair(r(0), r(1), a0);
        w.sync_pair(r(1), r(0), a1);
        let w = w.build();
        let states = apply_all(&model, &w);
        let v0 = model.observe(&states[0]);
        let v1 = model.observe(&states[1]);
        assert_ne!(v0, v1, "tie-broken order differs between replicas");
    }
}

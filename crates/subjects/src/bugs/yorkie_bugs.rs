//! The two Yorkie bugs of Table 1.

use er_pi::PruningConfig;
use er_pi_model::VersionVector;
use er_pi_model::{ReplicaId, Value, Workload};
use er_pi_rdl::{DeltaSync, DocOp, JsonValue};

use crate::{YorkieModel, YorkieState};

use super::{Bug, BugCtx, BugImpl, BugStatus, SubjectKind};

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

fn v(s: &str) -> Value {
    Value::from(s)
}

fn list(state: &YorkieState) -> Option<Vec<Value>> {
    state
        .doc
        .get(&["l"])
        .and_then(|j| j.as_array().map(<[Value]>::to_vec))
}

/// Yorkie-1 (issue #676): *document doesn't converge when using
/// Array.MoveAfter.*
///
/// The application implements moves as delete + insert; two replicas moving
/// the same element concurrently duplicate it.
pub(super) fn yorkie_1() -> Bug {
    let mut w = Workload::builder();
    let mk = w.update(r(0), "new_array", [v("l")]);
    let _ = mk;
    for item in ["x", "y", "z"] {
        w.update(r(0), "push", [v("l"), v(item)]);
    }
    let base = w.update(r(0), "push", [v("l"), v("w")]);
    w.sync_pair(r(0), r(1), base);
    let title = w.update(r(1), "set", [v("meta.title"), v("board")]);
    w.sync_pair(r(1), r(0), title);
    let rev = w.update(r(0), "set", [v("meta.rev"), Value::from(1)]);
    // The racing moves: R0 moves "x" towards the tail, R1 moves "x" one
    // slot down. In the recorded run R1 moves only after seeing R0's move;
    // the synchronizations are untracked (periodic), so the replay is free
    // to interleave the second move before the first move's arrival.
    let _mv0 = w.update(r(0), "move_naive", [v("l"), Value::from(0), Value::from(2)]);
    w.sync_untracked(r(0), r(1));
    let _mv1 = w.update(r(1), "move_naive", [v("l"), Value::from(0), Value::from(1)]);
    w.sync_untracked(r(1), r(0));
    w.sync_untracked(r(0), r(1));
    // The session continues normally after the silent corruption.
    let extra = w.update(r(1), "push", [v("l"), v("u")]);
    w.sync_pair(r(1), r(0), extra);
    w.sync_untracked(r(0), r(1));
    let _ = rev;

    fn check(ctx: &BugCtx<'_, YorkieState>) -> Option<String> {
        if ctx.failed_ops != 0 {
            return None;
        }
        let l0 = list(&ctx.states[0])?;
        let l1 = list(&ctx.states[1])?;
        // Converged replicas whose list duplicates an element.
        if l0 != l1 {
            return None;
        }
        // The corrupted board of the issue report: a duplicated "x", one
        // copy at replica 1's move target (index 1), with the full session
        // content present.
        let dup = l0.iter().filter(|x| **x == Value::from("x")).count();
        if l0.len() == 6 && dup == 2 && l0.get(1) == Some(&Value::from("x")) {
            return Some(format!(
                "Array.MoveAfter duplicated the moved element: {l0:?}"
            ));
        }
        None
    }

    Bug {
        name: "Yorkie-1",
        subject: SubjectKind::Yorkie,
        issue: 676,
        status: BugStatus::Open,
        reason: None,
        workload: w.build(),
        config: PruningConfig::default(),
        imp: BugImpl::Yorkie {
            model: YorkieModel::new(2),
            check,
        },
    }
}

/// Yorkie-2 (issue #663): *modify the set operation to handle nested object
/// values.*
///
/// A "refresh" that reads a nested object and sets it back wholesale drops
/// a concurrent sibling write on every replica — converged, but data is
/// silently lost.
pub(super) fn yorkie_2() -> Bug {
    let mut w = Workload::builder();
    let a = w.update(r(0), "set", [v("cfg.a"), Value::from(1)]);
    w.sync_split(r(0), r(1), Some(a));
    let b = w.update(r(1), "set", [v("cfg.b"), Value::from(2)]);
    w.sync_split(r(1), r(0), Some(b));
    let c = w.update(r(0), "set", [v("cfg.c"), Value::from(3)]);
    w.sync_split(r(0), r(1), Some(c));
    let title = w.update(r(1), "set", [v("doc.title"), v("settings")]);
    w.sync_split(r(1), r(0), Some(title));
    let d = w.update(r(1), "set", [v("cfg.d"), Value::from(4)]);
    w.sync_split(r(1), r(0), Some(d));
    // A local revision bump, then the refresh: R0 rewrites the whole cfg
    // object (reading its current view). Recorded after d's arrival, so
    // nothing is lost in the observed run.
    w.update(r(0), "set", [v("doc.rev"), Value::from(2)]);
    let refresh = w.update(r(0), "refresh_object", [v("cfg")]);
    w.sync_split(r(0), r(1), Some(refresh));
    let e = w.update(r(1), "set", [v("cfg.e"), Value::from(5)]);
    w.sync_split(r(1), r(0), Some(e));

    fn cfg_keys(state: &YorkieState) -> Option<Vec<String>> {
        match state.doc.get(&["cfg"])? {
            JsonValue::Object(map) => Some(map.keys().cloned().collect()),
            _ => None,
        }
    }

    fn check(ctx: &BugCtx<'_, YorkieState>) -> Option<String> {
        if ctx.failed_ops != 0 {
            return None; // every sync round-tripped in the reported run
        }
        let states = ctx.states;
        let k0 = cfg_keys(&states[0])?;
        let k1 = cfg_keys(&states[1])?;
        // Converged replicas that silently lost the concurrent sibling d,
        // while the rest of the document round-tripped completely.
        if k0 != k1 {
            return None;
        }
        let expect_rest = ["a", "b", "c", "e"];
        if !expect_rest.iter().all(|k| k0.iter().any(|x| x == k)) {
            return None;
        }
        if k0.iter().any(|x| x == "d") {
            return None;
        }
        // The unrelated subtree must have survived intact (the report's
        // confusing part: only the nested object misbehaves).
        let title_ok = states.iter().all(|st| {
            st.doc
                .get(&["doc", "title"])
                .and_then(|j| j.as_prim().cloned())
                == Some(Value::from("settings"))
        });
        if !title_ok {
            return None;
        }
        // Fully converged documents — the loss is silent.
        if states[0].doc.root() != states[1].doc.root() {
            return None;
        }
        // The rest of the session round-tripped: the revision bump reached
        // both replicas.
        let rev_ok = states.iter().all(|st| {
            st.doc
                .get(&["doc", "rev"])
                .and_then(|j| j.as_prim().cloned())
                == Some(Value::from(2))
        });
        if !rev_ok {
            return None;
        }
        // The race's signature in the replicas' operation logs (what the
        // reporter reconstructed from their sync traces): everything
        // applied in session order, except that R0 received d only after
        // its own refresh.
        let log = |st: &YorkieState| -> Vec<String> {
            st.doc
                .missing_since(&VersionVector::new())
                .iter()
                .map(|op| match op {
                    DocOp::SetPrim { path, .. } => path.join("."),
                    DocOp::SetObject { path, .. } => format!("set:{}", path.join(".")),
                    _ => "?".into(),
                })
                .collect()
        };
        let r0_expected = [
            "cfg.a",
            "cfg.b",
            "cfg.c",
            "doc.title",
            "doc.rev",
            "set:cfg",
            "cfg.d",
            "cfg.e",
        ];
        let r1_expected = [
            "cfg.a",
            "cfg.b",
            "cfg.c",
            "doc.title",
            "cfg.d",
            "doc.rev",
            "set:cfg",
            "cfg.e",
        ];
        if log(&states[0]) != r0_expected || log(&states[1]) != r1_expected {
            return None;
        }
        Some(format!(
            "set over nested object dropped sibling key d: {k0:?}"
        ))
    }

    Bug {
        name: "Yorkie-2",
        subject: SubjectKind::Yorkie,
        issue: 663,
        status: BugStatus::Closed,
        reason: Some("misconception"),
        workload: w.build(),
        config: PruningConfig::default(),
        imp: BugImpl::Yorkie {
            model: YorkieModel::new(2),
            check,
        },
    }
}

//! The two ReplicaDB bugs of Table 1.

use er_pi::PruningConfig;
use er_pi_model::{ReplicaId, Value, Workload};

use crate::{ReplicaDbModel, ReplicaDbState, ReplicationMode};

use super::{Bug, BugCtx, BugImpl, BugStatus, SubjectKind};

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

/// ReplicaDB-1 (issue #79): *out of memory error.*
///
/// The transfer job's staging buffer is only bounded if reads and commits
/// alternate; interleavings that stack multiple reads before any commit
/// blow the memory budget.
pub(super) fn replicadb_1() -> Bug {
    let mut w = Workload::builder();
    let p1 = w.update(r(0), "put", [Value::from(1), Value::from(10)]);
    let p2 = w.update(r(0), "put", [Value::from(2), Value::from(20)]);
    let p3 = w.update(r(0), "put", [Value::from(3), Value::from(30)]);
    let mut reads = Vec::new();
    let mut commits = Vec::new();
    for k in 1..=3i64 {
        reads.push(w.update(r(1), "read_batch", [Value::from(k), Value::from(k)]));
        commits.push(w.update(r(1), "commit_batch", [Value::Null; 0]));
    }
    w.update(r(1), "finish", [Value::Null; 0]);

    fn check(ctx: &BugCtx<'_, ReplicaDbState>) -> Option<String> {
        // The crash signature of the report: every read found its row
        // (peak = 3 rows), the third read blew the budget, and the two
        // trailing commits found nothing left to flush.
        if ctx.failed_ops == 3 && ctx.states[1].oom && ctx.states[1].peak_staging_bytes == 3 * 64 {
            Some("transfer job ran out of memory: three reads stacked".into())
        } else {
            None
        }
    }

    Bug {
        name: "ReplicaDB-1",
        subject: SubjectKind::ReplicaDb,
        issue: 79,
        status: BugStatus::Closed,
        reason: Some("misuse"),
        workload: w.build(),
        // The three source puts hit disjoint keys: declared independent.
        // And once every read precedes every commit, only the first commit
        // can succeed — the rest fail, so their order is irrelevant
        // (Algorithm 4).
        config: PruningConfig::default()
            .with_independent_set(vec![p1, p2, p3])
            .with_failed_ops(er_pi::FailedOpsRule {
                predecessors: reads,
                successors: commits,
            }),
        imp: BugImpl::ReplicaDb {
            // Budget: two rows.
            model: ReplicaDbModel::new(ReplicationMode::Complete, 2 * 64),
            check,
        },
    }
}

/// ReplicaDB-2 (issue #23): *deleted records aren't getting deleted from
/// the sink tables.*
///
/// Incremental replication only reconciles upserts; a delete that
/// interleaves *after* its key's transfer leaves a ghost row in the sink
/// forever.
pub(super) fn replicadb_2() -> Bug {
    let mut w = Workload::builder();
    let p1 = w.update(r(0), "put", [Value::from(1), Value::from(10)]);
    let p2 = w.update(r(0), "put", [Value::from(2), Value::from(20)]);
    let p3 = w.update(r(0), "put", [Value::from(3), Value::from(30)]);
    w.update(r(0), "delete", [Value::from(2)]);
    let rb1 = w.update(r(1), "read_batch", [Value::from(0), Value::from(100)]);
    let c1 = w.update(r(1), "commit_batch", [Value::Null; 0]);
    w.update(r(1), "snapshot", [Value::Null; 0]);
    w.update(r(0), "put", [Value::from(4), Value::from(40)]);
    w.update(r(0), "delete", [Value::from(4)]);
    let rb2 = w.update(r(1), "read_batch", [Value::from(4), Value::from(4)]);
    let c2 = w.update(r(1), "commit_batch", [Value::Null; 0]);
    w.update(r(0), "put", [Value::from(5), Value::from(50)]);
    w.update(r(1), "read_batch", [Value::from(5), Value::from(5)]);
    w.update(r(1), "finish", [Value::Null; 0]);

    fn check(ctx: &BugCtx<'_, ReplicaDbState>) -> Option<String> {
        if ctx.failed_ops != 0 {
            return None;
        }
        let source = &ctx.states[0].table;
        let sink = &ctx.states[1].table;
        let ghosts: Vec<i64> = sink
            .keys()
            .filter(|k| !source.contains_key(k))
            .copied()
            .collect();
        if !ghosts.is_empty() {
            return Some(format!(
                "deleted records survive in the sink: keys {ghosts:?}"
            ));
        }
        None
    }

    Bug {
        name: "ReplicaDB-2",
        subject: SubjectKind::ReplicaDb,
        issue: 23,
        status: BugStatus::Closed,
        reason: Some("misconception"),
        workload: w.build(),
        config: PruningConfig::default()
            .with_independent_set(vec![p1, p2, p3])
            .with_group(vec![rb1, c1])
            .with_group(vec![rb2, c2]),
        imp: BugImpl::ReplicaDb {
            model: ReplicaDbModel::new(ReplicationMode::Incremental, 100 * 64),
            check,
        },
    }
}

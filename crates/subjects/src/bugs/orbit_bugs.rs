//! The five OrbitDB bugs of Table 1.

use er_pi::PruningConfig;
use er_pi_model::{EventId, ReplicaId, Value, Workload};
use er_pi_rdl::{DeltaSync, LogSortOrder};

use crate::{OrbitConfig, OrbitModel, OrbitState};

use super::{Bug, BugCtx, BugImpl, BugStatus, SubjectKind};

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

fn v(s: &str) -> Value {
    Value::from(s)
}

fn payloads(state: &OrbitState) -> Vec<String> {
    state
        .log
        .values()
        .into_iter()
        .map(|p| p.to_string())
        .collect()
}

/// OrbitDB-1 (issue #513): *ordering tie-breaker can cause undefined
/// ordering with the same identity.*
///
/// Two writers share an identity; with a clock-only sort, equal Lamport
/// clocks fall back to insertion order, which differs between replicas.
pub(super) fn orbitdb_1() -> Bug {
    let mut w = Workload::builder();
    let a0 = w.update(r(0), "append", [v("a0")]);
    w.sync_split(r(0), r(1), Some(a0));
    // Both writers reset their (wall-clock seeded) Lamport clocks — the
    // scenario of the issue: identical clocks AND identical identities.
    w.update(r(0), "poison_clock", [Value::from(10)]);
    let a1 = w.update(r(0), "append", [v("a1")]);
    w.sync_split(r(0), r(1), Some(a1));
    w.update(r(1), "poison_clock", [Value::from(10)]);
    let b1 = w.update(r(1), "append", [v("b1")]);
    w.sync_split(r(1), r(0), Some(b1));
    w.update(r(1), "audit", [Value::Null; 0]);

    fn check(ctx: &BugCtx<'_, OrbitState>) -> Option<String> {
        if ctx.failed_ops != 0 {
            return None;
        }
        let (p0, p1) = (payloads(&ctx.states[0]), payloads(&ctx.states[1]));
        if p0.len() == 3 && p1.len() == 3 && p0 != p1 {
            return Some(format!(
                "same-identity tie left replicas with different orders: {p0:?} vs {p1:?}"
            ));
        }
        None
    }

    Bug {
        name: "OrbitDB-1",
        subject: SubjectKind::OrbitDb,
        issue: 513,
        status: BugStatus::Open,
        reason: None,
        workload: w.build(),
        config: PruningConfig::default(),
        imp: BugImpl::Orbit {
            model: OrbitModel::with_config(
                2,
                OrbitConfig {
                    sort: LogSortOrder::ClockOnly,
                    identities: vec!["same".into(), "same".into()],
                    ..OrbitConfig::default()
                },
            ),
            check,
        },
    }
}

/// OrbitDB-2 (issue #512): *Lamport clock can be set far into the future
/// making db progress halt.*
///
/// An interleaving that poisons the clock before a sync ships a
/// far-future entry, which every peer rejects from then on.
pub(super) fn orbitdb_2() -> Bug {
    let mut w = Workload::builder();
    let a0 = w.update(r(0), "append", [v("x")]);
    w.sync_split(r(0), r(1), Some(a0));
    let b0 = w.update(r(1), "append", [v("y")]);
    w.sync_split(r(1), r(0), Some(b0));
    w.update(r(0), "poison_clock", [Value::from(1_000_000_000i64)]);
    w.update(r(0), "append", [v("poisoned")]);

    fn check(ctx: &BugCtx<'_, OrbitState>) -> Option<String> {
        if ctx.failed_ops != 0 {
            return None;
        }
        // The report's shape: replication otherwise completed in order —
        // R0 holds x, y, and its poisoned entry; R1 holds y and x — but R1
        // rejected exactly the far-future entry and halts on it.
        let (r0, r1) = (&ctx.states[0], &ctx.states[1]);
        if r1.log.rejected_count() != 1 {
            return None;
        }
        let arrival = |st: &OrbitState| -> Vec<String> {
            st.log
                .missing_since(&er_pi_model::VersionVector::new())
                .iter()
                .map(|e| e.payload.to_string())
                .collect()
        };
        let r0_expected = ["x", "y", "poisoned"].map(|s| format!("{s:?}"));
        let r1_expected = ["y", "x"].map(|s| format!("{s:?}"));
        if arrival(r0) == r0_expected && arrival(r1) == r1_expected {
            return Some("peer halts on far-future Lamport clock".into());
        }
        None
    }

    Bug {
        name: "OrbitDB-2",
        subject: SubjectKind::OrbitDb,
        issue: 512,
        status: BugStatus::Open,
        reason: None,
        workload: w.build(),
        config: PruningConfig::default(),
        imp: BugImpl::Orbit {
            model: OrbitModel::with_config(
                2,
                OrbitConfig {
                    max_clock_skew: Some(1_000),
                    ..OrbitConfig::default()
                },
            ),
            check,
        },
    }
}

/// OrbitDB-3 (issue #1153): *could not append entry although write access
/// is granted.*
///
/// The access controller is cached; an interleaving that takes the cache
/// snapshot between a revoke and the re-grant denies a legitimately granted
/// writer.
pub(super) fn orbitdb_3() -> Bug {
    let mut w = Workload::builder();
    let a0 = w.update(r(0), "append", [v("a0")]);
    w.sync_split(r(0), r(1), Some(a0));
    let b0 = w.update(r(1), "append", [v("b0")]);
    w.sync_split(r(1), r(0), Some(b0));
    w.update(r(0), "revoke", [v("w")]);
    w.update(r(0), "grant", [v("w")]);
    w.update(r(0), "cache_access", [Value::Null; 0]);
    let a1 = w.update(r(0), "append", [v("a1")]);
    w.sync_split(r(0), r(1), Some(a1));
    let b1 = w.update(r(1), "append", [v("b1")]);
    w.sync_split(r(1), r(0), Some(b1));

    fn check(ctx: &BugCtx<'_, OrbitState>) -> Option<String> {
        // The denied append is the run's only failure; everything else
        // worked in order — the report's confusing symptom.
        if ctx.failed_ops != 1 {
            return None;
        }
        if ctx.states[0].rejected_appends != 1 {
            return None;
        }
        let arrival = |st: &OrbitState| -> Vec<String> {
            st.log
                .missing_since(&er_pi_model::VersionVector::new())
                .iter()
                .map(|e| e.payload.to_string())
                .collect()
        };
        let expected = ["a0", "b0", "b1"].map(|s| format!("{s:?}"));
        if arrival(&ctx.states[0]) == expected && arrival(&ctx.states[1]) == expected {
            return Some("granted writer denied by the stale access cache".into());
        }
        None
    }

    Bug {
        name: "OrbitDB-3",
        subject: SubjectKind::OrbitDb,
        issue: 1153,
        status: BugStatus::Closed,
        reason: Some("misuse"),
        workload: w.build(),
        config: PruningConfig::default(),
        imp: BugImpl::Orbit {
            model: OrbitModel::with_config(
                2,
                OrbitConfig {
                    identities: vec!["w".into(), "w".into()],
                    ..OrbitConfig::default()
                },
            ),
            check,
        },
    }
}

/// OrbitDB-4 (issue #583): *head hash didn't match the contents.*
///
/// Heads-only replication: a head can arrive whose ancestors are fetched
/// separately. If the fetch races ahead of the head's arrival, the missing
/// parents are never resolved and the DAG stays broken.
pub(super) fn orbitdb_4() -> Bug {
    let mut w = Workload::builder();
    // R0 builds a chain and ships it to R2.
    let a1 = w.update(r(0), "append", [v("a1")]);
    let a2 = w.update(r(0), "append", [v("a2")]);
    let (s02, _x) = w.sync_split(r(0), r(2), Some(a2));
    // R2 extends the chain and announces its head to R1.
    let c1 = w.update(r(2), "append", [v("c1")]);
    let c2 = w.update(r(2), "append", [v("c2")]);
    let (s21, x21) = w.sync_split(r(2), r(1), Some(c2));
    let fetch2 = w.update(r(1), "fetch", [Value::from(2)]);
    // R0 continues; R1 receives and heals R0-authored ancestors.
    let a3 = w.update(r(0), "append", [v("a3")]);
    let (s01, _x01) = w.sync_split(r(0), r(1), Some(a3));
    w.update(r(1), "fetch", [Value::from(0)]);
    // R2 continues; R1 receives one more head.
    let c3 = w.update(r(2), "append", [v("c3")]);
    let (s21b, _x21b) = w.sync_split(r(2), r(1), Some(c3));
    w.update(r(1), "fetch", [Value::from(0)]);
    w.update(r(1), "audit", [Value::Null; 0]);

    fn check(ctx: &BugCtx<'_, OrbitState>) -> Option<String> {
        if ctx.failed_ops != 0 {
            return None; // the reported run had no visible errors
        }
        let st = &ctx.states[1];
        // The narrow symptom from the issue: R1 received every announced
        // head IN ORDER and healed every R0-authored ancestor, yet one
        // R2-authored parent is missing forever — verify fails on exactly
        // that hash.
        let arrival = |st: &OrbitState| -> Vec<String> {
            st.log
                .missing_since(&er_pi_model::VersionVector::new())
                .iter()
                .map(|e| e.payload.to_string())
                .collect()
        };
        let r1_expected = ["c2", "a3", "a2", "a1", "c3"].map(|s| format!("{s:?}"));
        // Heads-only sync: R2 received only R0's head (a2); a1 stays
        // dangling at R2 (it never fetches), which is normal operation.
        let r2_expected = ["a2", "c1", "c2", "c3"].map(|s| format!("{s:?}"));
        if arrival(st) == r1_expected
            && arrival(&ctx.states[2]) == r2_expected
            && !st.log.verify()
            && st.log.dangling_refs().len() == 1
        {
            return Some(format!(
                "head hash didn't match: dangling parent {:?}",
                st.log.dangling_refs()
            ));
        }
        None
    }

    let config = PruningConfig::default()
        .with_group(vec![a1, a2, s02])
        .with_group(vec![c1, c2, s21])
        .with_group(vec![a3, s01])
        .with_group(vec![c3, s21b]);
    let _ = (x21, fetch2);

    Bug {
        name: "OrbitDB-4",
        subject: SubjectKind::OrbitDb,
        issue: 583,
        status: BugStatus::Closed,
        reason: Some("misconception"),
        workload: w.build(),
        config,
        imp: BugImpl::Orbit {
            model: OrbitModel::with_config(
                3,
                OrbitConfig {
                    heads_only_sync: true,
                    ..OrbitConfig::default()
                },
            ),
            check,
        },
    }
}

/// OrbitDB-5 (issue #557): *repo folder keeps getting locked.*
///
/// Closing the database while a synchronization is still in flight leaves
/// the repo lock behind; every later open fails. The largest workload of
/// the catalogue (24 events) — the scalability subject of Figure 10.
pub(super) fn orbitdb_5() -> Bug {
    let mut w = Workload::builder();
    let mut groups: Vec<Vec<EventId>> = Vec::new();
    w.update(r(1), "open_repo", [Value::Null; 0]);
    // Two rounds from writer R0.
    for p in ["a1", "a2"] {
        let a = w.update(r(0), "append", [v(p)]);
        let (s, _x) = w.sync_split(r(0), r(1), Some(a));
        groups.push(vec![a, s]);
    }
    // One round from writer R2 — the still-unflushed sync of the defect.
    let c1 = w.update(r(2), "append", [v("c1")]);
    let (s2, _x2) = w.sync_split(r(2), r(1), Some(c1));
    groups.push(vec![c1, s2]);
    w.update(r(1), "flush", [Value::Null; 0]);
    w.update(r(1), "close_repo", [Value::Null; 0]);
    w.update(r(1), "open_repo", [Value::Null; 0]);
    // Three more rounds from R0 after the reopen.
    for p in ["a3", "a4", "a5"] {
        let a = w.update(r(0), "append", [v(p)]);
        let (s, _x) = w.sync_split(r(0), r(1), Some(a));
        groups.push(vec![a, s]);
    }
    w.update(r(1), "flush", [Value::Null; 0]);
    w.update(r(1), "close_repo", [Value::Null; 0]);

    fn check(ctx: &BugCtx<'_, OrbitState>) -> Option<String> {
        let st = &ctx.states[1];
        // Symptom: the reopen and the final close both failed on the stuck
        // lock (exactly two failures), although replication itself
        // completed in order — the log holds all six payloads as sent.
        if ctx.failed_ops != 2 || !st.lock_stuck || st.failed_opens != 1 {
            return None;
        }
        let arrival: Vec<String> = st
            .log
            .missing_since(&er_pi_model::VersionVector::new())
            .iter()
            .map(|e| e.payload.to_string())
            .collect();
        let expected = ["a1", "a2", "c1", "a3", "a4", "a5"].map(|s| format!("{s:?}"));
        if arrival != expected || st.busy {
            return None;
        }
        Some("repo folder lock left behind by a close racing an unflushed sync".into())
    }

    let mut config = PruningConfig::default();
    for g in groups {
        config = config.with_group(g);
    }

    Bug {
        name: "OrbitDB-5",
        subject: SubjectKind::OrbitDb,
        issue: 557,
        status: BugStatus::Closed,
        reason: Some("misconception"),
        workload: w.build(),
        config,
        imp: BugImpl::Orbit {
            model: OrbitModel::new(3),
            check,
        },
    }
}

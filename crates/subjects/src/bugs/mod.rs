//! The twelve-bug catalogue of Table 1.
//!
//! Every bug is encoded as a `(workload, pruning configuration, violation
//! predicate)` triple on the corresponding subject model. The workload's
//! *recorded* order is a correct execution; the bug manifests only under
//! specific interleavings — which is exactly what makes these bugs hard to
//! reproduce from user reports and motivates exhaustive replay.
//!
//! The per-bug pruning configurations play the role of the "applicable
//! pruning algorithms" the paper applies per bug (§6.3): event grouping is
//! always on; developer-specified groups, replica-specific targets,
//! independence sets, and failed-ops rules are added where the bug's
//! semantics justify them.

mod orbit_bugs;
mod rdb_bugs;
mod roshi_bugs;
mod yorkie_bugs;

use std::sync::Arc;

use er_pi::telemetry::{ProgressSnapshot, Sink};
use er_pi::{
    Assertion, CancelToken, ErPiError, ExecutorService, ExploreMode, ForensicBundle,
    InlineExecutor, PruningConfig, Report, SanitizerReport, Session, SessionMetrics, SystemModel,
    TestSuite, TimeModel, Violation,
};
use er_pi_interleave::{DfsExplorer, PruneStats};
use er_pi_model::{EventId, Workload};

use crate::{
    CrdtsState, OrbitModel, OrbitState, ReplicaDbModel, ReplicaDbState, RoshiModel, RoshiState,
    YorkieModel, YorkieState,
};

/// Periodic progress callback for service-scheduled campaigns: invoked
/// with a live [`ProgressSnapshot`] every few runs (see
/// [`Bug::replay_report_on`]). The callback runs on service worker
/// threads — keep it cheap and non-blocking.
pub type ProgressFn = Arc<dyn Fn(&ProgressSnapshot) + Send + Sync>;

/// Sample period (in runs) of the [`ProgressFn`] hook. Small catalogue
/// workloads finish in a few hundred runs, so a tight period keeps the
/// live view fresh without measurable overhead.
const PROGRESS_EVERY: usize = 16;

/// The five evaluation subjects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubjectKind {
    /// SoundCloud's Roshi (Go).
    Roshi,
    /// OrbitDB (JavaScript).
    OrbitDb,
    /// ReplicaDB (Java).
    ReplicaDb,
    /// Yorkie (Go).
    Yorkie,
    /// The `crdts` collection (Java).
    Crdts,
}

impl SubjectKind {
    /// All subjects, in the paper's order.
    pub fn all() -> [SubjectKind; 5] {
        [
            SubjectKind::Roshi,
            SubjectKind::OrbitDb,
            SubjectKind::ReplicaDb,
            SubjectKind::Yorkie,
            SubjectKind::Crdts,
        ]
    }
}

impl std::fmt::Display for SubjectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubjectKind::Roshi => f.write_str("Roshi"),
            SubjectKind::OrbitDb => f.write_str("OrbitDB"),
            SubjectKind::ReplicaDb => f.write_str("ReplicaDB"),
            SubjectKind::Yorkie => f.write_str("Yorkie"),
            SubjectKind::Crdts => f.write_str("CRDTs"),
        }
    }
}

/// Upstream status of the bug report (Table 1's "Status" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugStatus {
    /// Fixed by the library developers.
    Closed,
    /// Still open at the time of the paper.
    Open,
}

impl std::fmt::Display for BugStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BugStatus::Closed => f.write_str("closed"),
            BugStatus::Open => f.write_str("open"),
        }
    }
}

/// What a bug's violation predicate can inspect after one replayed
/// interleaving.
#[derive(Debug)]
pub struct BugCtx<'a, S> {
    /// Final replica states.
    pub states: &'a [S],
    /// Number of events that failed during the run. Every catalogue bug
    /// requires a *plausible* run — reporters hit these bugs in executions
    /// that looked healthy, so reproduction demands the same.
    pub failed_ops: usize,
}

/// The model + violation check of one bug (type-erased over subjects).
pub(crate) enum BugImpl {
    /// A Roshi bug.
    Roshi {
        /// Subject model instance.
        model: RoshiModel,
        /// Returns `Some(symptom)` when the bug manifested.
        check: fn(&BugCtx<'_, RoshiState>) -> Option<String>,
    },
    /// An OrbitDB bug.
    Orbit {
        /// Subject model instance.
        model: OrbitModel,
        /// Returns `Some(symptom)` when the bug manifested.
        check: fn(&BugCtx<'_, OrbitState>) -> Option<String>,
    },
    /// A ReplicaDB bug.
    ReplicaDb {
        /// Subject model instance.
        model: ReplicaDbModel,
        /// Returns `Some(symptom)` when the bug manifested.
        check: fn(&BugCtx<'_, ReplicaDbState>) -> Option<String>,
    },
    /// A Yorkie bug.
    Yorkie {
        /// Subject model instance.
        model: YorkieModel,
        /// Returns `Some(symptom)` when the bug manifested.
        check: fn(&BugCtx<'_, YorkieState>) -> Option<String>,
    },
    /// A `crdts` collection bug (unused by Table 1 but kept for symmetry
    /// with user extensions).
    #[allow(dead_code)]
    Crdts {
        /// Subject model instance.
        model: crate::CrdtsModel,
        /// Returns `Some(symptom)` when the bug manifested.
        check: fn(&BugCtx<'_, CrdtsState>) -> Option<String>,
    },
}

/// One reproduction attempt's outcome — a bar of Figures 8a/8b.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Exploration mode name.
    pub mode: String,
    /// 1-based count of interleavings replayed until the bug manifested
    /// (`None` = not reproduced within the cap).
    pub found_at: Option<usize>,
    /// Interleavings replayed in total.
    pub explored: usize,
    /// Simulated time spent, seconds (the Figure 8b axis).
    pub sim_secs: f64,
    /// Wall-clock time spent, milliseconds.
    pub wall_ms: u128,
    /// Mode overhead (Random's shuffle retries).
    pub wasted: u64,
}

impl Repro {
    /// Returns `true` if the bug was reproduced.
    pub fn reproduced(&self) -> bool {
        self.found_at.is_some()
    }
}

/// One row of Table 1: a reproducible bug.
pub struct Bug {
    /// Short name ("Roshi-1", "ODB-5", …).
    pub name: &'static str,
    /// The subject it lives in.
    pub subject: SubjectKind,
    /// Upstream issue number.
    pub issue: u32,
    /// Upstream status.
    pub status: BugStatus,
    /// Root-cause classification (Table 1's "Reason"; `None` for open
    /// bugs, which the paper leaves unclassified).
    pub reason: Option<&'static str>,
    pub(crate) workload: Workload,
    pub(crate) config: PruningConfig,
    pub(crate) imp: BugImpl,
}

impl std::fmt::Debug for Bug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bug")
            .field("name", &self.name)
            .field("issue", &self.issue)
            .field("events", &self.events())
            .finish()
    }
}

/// A type-erased handle for measuring `State: Clone` cost — the dominant
/// per-snapshot expense of the incremental executor's checkpoint trie.
///
/// Built by [`Bug::clone_probe`]: holds the final replica states of the
/// bug's recorded order (a representative fully-populated snapshot). Each
/// [`CloneProbe::clone_states`] call deep-clones them and returns the
/// summed [`SystemModel::state_size_hint`], so the `state_clone`
/// micro-benchmark can weigh clone time against the budget charge the same
/// clone would incur in the trie.
pub struct CloneProbe {
    clone_fn: Box<dyn Fn() -> usize + Send + Sync>,
}

impl CloneProbe {
    /// Deep-clones the captured states once; returns their total size
    /// hint in bytes.
    pub fn clone_states(&self) -> usize {
        (self.clone_fn)()
    }
}

impl std::fmt::Debug for CloneProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloneProbe").finish_non_exhaustive()
    }
}

fn probe<M, S>(model: M, workload: &Workload) -> CloneProbe
where
    M: SystemModel<State = S> + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
{
    let exec = InlineExecutor::execute(
        &model,
        workload,
        &workload.recorded_order(),
        &TimeModel::paper_setup(),
    );
    let states = exec.states;
    CloneProbe {
        clone_fn: Box::new(move || {
            let cloned = states.clone();
            cloned.iter().map(|s| model.state_size_hint(s)).sum()
        }),
    }
}

/// How one reproduction attempt is scheduled.
struct RunPlan {
    mode: ExploreMode,
    cap: usize,
    stop_on_first_violation: bool,
    /// Replay worker threads; `1` pins the sequential reference path.
    workers: usize,
    /// Prefix-sharing incremental replay; `false` pins the scratch
    /// executor the incremental-equivalence suite compares against.
    incremental: bool,
    /// Telemetry sink to attach, if any. Telemetry is write-only, so the
    /// resulting [`Report`] must be byte-identical with or without it
    /// (pinned by the telemetry-equivalence suite).
    telemetry: Option<Arc<dyn Sink>>,
    /// Run the replay-time independence sanitizer. Sanitizer findings land
    /// next to the [`Report`], never inside it, so the report must also be
    /// byte-identical with or without this (pinned by the
    /// sanitizer-equivalence suite).
    sanitize: bool,
    /// State-hash subsumption; `false` pins the execute-everything
    /// reference the dpor-equivalence suite compares against.
    subsumption: bool,
    /// Sleep-set (DPOR-style) pruning over unit permutations.
    sleep_sets: bool,
    /// Pool dispenser claim granularity, in interleavings.
    chunk_size: usize,
    /// Fleet-metrics handle to attach. Like telemetry, metrics are
    /// write-only: the [`Report`] must be byte-identical with or without
    /// them.
    metrics: Option<SessionMetrics>,
}

/// Options for [`Bug::replay_report_opts`] — the fully general scheduling
/// knob set behind the differential-equivalence harnesses.
///
/// ```
/// use er_pi_subjects::{Bug, ReplayOptions};
///
/// let bug = Bug::by_name("Roshi-1").unwrap();
/// let report = bug.replay_report_opts(&ReplayOptions {
///     workers: 2,
///     ..ReplayOptions::default()
/// });
/// assert!(report.explored > 0);
/// ```
#[derive(Clone)]
pub struct ReplayOptions {
    /// Replay at most this many interleavings (the paper caps at 10 000).
    pub cap: usize,
    /// Stop at the first violating interleaving.
    pub stop_on_first_violation: bool,
    /// Replay worker threads; `1` pins the sequential reference path,
    /// `0` uses all available cores.
    pub workers: usize,
    /// Prefix-sharing incremental replay; `false` pins the scratch
    /// executor.
    pub incremental: bool,
    /// Telemetry sink to attach to the session, if any.
    pub telemetry: Option<Arc<dyn Sink>>,
    /// Run the replay-time independence sanitizer alongside the replay;
    /// retrieve its findings via [`Bug::replay_report_checked`].
    pub sanitize: bool,
    /// State-hash subsumption ([`Session::set_subsumption`]); the report
    /// stays byte-identical either way.
    pub subsumption: bool,
    /// Sleep-set pruning ([`Session::set_sleep_sets`]); violation sets
    /// stay identical, replayed representatives may differ.
    pub sleep_sets: bool,
    /// Pool dispenser claim granularity
    /// ([`Session::set_chunk_size`]; default
    /// [`DEFAULT_CHUNK_SIZE`](er_pi::DEFAULT_CHUNK_SIZE)).
    pub chunk_size: usize,
    /// Fleet-metrics handle ([`Session::set_metrics`]) exporting run and
    /// pruning counters to a shared registry. Write-only, like
    /// `telemetry`: the report stays byte-identical either way.
    pub metrics: Option<SessionMetrics>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            cap: 10_000,
            stop_on_first_violation: false,
            workers: 1,
            incremental: true,
            telemetry: None,
            sanitize: false,
            subsumption: false,
            sleep_sets: false,
            chunk_size: er_pi::DEFAULT_CHUNK_SIZE,
            metrics: None,
        }
    }
}

impl std::fmt::Debug for ReplayOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayOptions")
            .field("cap", &self.cap)
            .field("stop_on_first_violation", &self.stop_on_first_violation)
            .field("workers", &self.workers)
            .field("incremental", &self.incremental)
            .field("telemetry", &self.telemetry.is_some())
            .field("sanitize", &self.sanitize)
            .field("subsumption", &self.subsumption)
            .field("sleep_sets", &self.sleep_sets)
            .field("chunk_size", &self.chunk_size)
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

fn run_report<M, S>(
    model: M,
    workload: &Workload,
    config: &PruningConfig,
    plan: &RunPlan,
    check: for<'a> fn(&BugCtx<'a, S>) -> Option<String>,
) -> (Report, Option<SanitizerReport>)
where
    M: SystemModel<State = S> + Sync,
    S: Send + Sync + 'static,
{
    let mut session = Session::new(model);
    session.set_workload(workload.clone());
    if matches!(plan.mode, ExploreMode::ErPi) {
        session.set_config(config.clone());
    }
    session.set_mode(plan.mode);
    session.set_cap(plan.cap);
    session.set_stop_on_first_violation(plan.stop_on_first_violation);
    session.set_workers(plan.workers);
    session.set_incremental(plan.incremental);
    session.set_sanitizer(plan.sanitize);
    session.set_subsumption(plan.subsumption);
    session.set_sleep_sets(plan.sleep_sets);
    session.set_chunk_size(plan.chunk_size);
    if let Some(sink) = &plan.telemetry {
        session.set_telemetry(Arc::clone(sink));
    }
    if let Some(metrics) = &plan.metrics {
        session.set_metrics(metrics.clone());
    }
    let suite = TestSuite::new().with(Assertion::new("bug-manifested", move |ctx| {
        let bug_ctx = BugCtx {
            states: ctx.states,
            failed_ops: ctx.failed_ops(),
        };
        match check(&bug_ctx) {
            Some(symptom) => Err(symptom),
            None => Ok(()),
        }
    }));
    let report = session.replay(&suite).expect("bug workload installed");
    (report, session.sanitizer_report().cloned())
}

/// [`run_report`] with the replay submitted to a shared [`ExecutorService`]
/// instead of a session-private pool — the campaign-server path. Returns
/// `Err` (instead of panicking) because service campaigns are routinely
/// cancelled from outside.
#[allow(clippy::too_many_arguments)]
fn run_report_on<M, S>(
    model: M,
    workload: &Workload,
    config: &PruningConfig,
    plan: &RunPlan,
    check: for<'a> fn(&BugCtx<'a, S>) -> Option<String>,
    service: &ExecutorService,
    priority: u8,
    cancel: Option<CancelToken>,
    progress: Option<ProgressFn>,
) -> Result<Report, ErPiError>
where
    M: SystemModel<State = S> + Clone + Send + Sync + 'static,
    S: Send + Sync + 'static,
{
    let mut session = Session::new(model);
    session.set_workload(workload.clone());
    if matches!(plan.mode, ExploreMode::ErPi) {
        session.set_config(config.clone());
    }
    session.set_mode(plan.mode);
    session.set_cap(plan.cap);
    session.set_stop_on_first_violation(plan.stop_on_first_violation);
    session.set_incremental(plan.incremental);
    session.set_subsumption(plan.subsumption);
    session.set_sleep_sets(plan.sleep_sets);
    session.set_chunk_size(plan.chunk_size);
    if let Some(sink) = &plan.telemetry {
        session.set_telemetry(Arc::clone(sink));
    }
    if let Some(metrics) = &plan.metrics {
        session.set_metrics(metrics.clone());
    }
    session.set_cancel_token(cancel);
    if let Some(hook) = progress {
        session.set_progress_hook(PROGRESS_EVERY, move |snap| hook(snap));
    }
    let suite = TestSuite::new().with(Assertion::new("bug-manifested", move |ctx| {
        let bug_ctx = BugCtx {
            states: ctx.states,
            failed_ops: ctx.failed_ops(),
        };
        match check(&bug_ctx) {
            Some(symptom) => Err(symptom),
            None => Ok(()),
        }
    }));
    session.replay_on(service, priority, &suite)
}

fn run<M, S>(
    model: M,
    workload: &Workload,
    config: &PruningConfig,
    mode: ExploreMode,
    cap: usize,
    check: for<'a> fn(&BugCtx<'a, S>) -> Option<String>,
) -> Repro
where
    M: SystemModel<State = S> + Sync,
    S: Send + Sync + 'static,
{
    let plan = RunPlan {
        mode,
        cap,
        stop_on_first_violation: true,
        workers: 0, // all available cores
        incremental: true,
        telemetry: None,
        sanitize: false,
        subsumption: false,
        sleep_sets: false,
        chunk_size: er_pi::DEFAULT_CHUNK_SIZE,
        metrics: None,
    };
    let (report, _) = run_report(model, workload, config, &plan, check);
    Repro {
        mode: report.mode.clone(),
        found_at: report.first_violation_at.map(|i| i + 1),
        explored: report.explored,
        sim_secs: report.sim_secs(),
        wall_ms: report.wall_ms,
        wasted: report.wasted_work,
    }
}

fn run_dfs_base<M, S>(
    model: M,
    workload: &Workload,
    base: Vec<EventId>,
    cap: usize,
    check: for<'a> fn(&BugCtx<'a, S>) -> Option<String>,
) -> Repro
where
    M: SystemModel<State = S>,
    S: 'static,
{
    let started = std::time::Instant::now();
    let time = TimeModel::paper_setup();
    let explorer = DfsExplorer::with_base_order(workload, base);
    let mut explored = 0usize;
    let mut found_at = None;
    let mut sim_us = 0u64;
    for il in explorer {
        if explored >= cap {
            break;
        }
        explored += 1;
        let exec = InlineExecutor::execute(&model, workload, &il, &time);
        sim_us += exec.sim_us;
        let failed = exec.outcomes.iter().filter(|o| o.is_failed()).count();
        let ctx = BugCtx {
            states: &exec.states,
            failed_ops: failed,
        };
        if check(&ctx).is_some() {
            found_at = Some(explored);
            break;
        }
    }
    Repro {
        mode: "DFS".into(),
        found_at,
        explored,
        sim_secs: sim_us as f64 / 1e6,
        wall_ms: started.elapsed().as_millis(),
        wasted: 0,
    }
}

impl Bug {
    /// All twelve bugs, in Table 1 order.
    pub fn catalogue() -> Vec<Bug> {
        vec![
            roshi_bugs::roshi_1(),
            roshi_bugs::roshi_2(),
            roshi_bugs::roshi_3(),
            orbit_bugs::orbitdb_1(),
            orbit_bugs::orbitdb_2(),
            orbit_bugs::orbitdb_3(),
            orbit_bugs::orbitdb_4(),
            orbit_bugs::orbitdb_5(),
            rdb_bugs::replicadb_1(),
            rdb_bugs::replicadb_2(),
            yorkie_bugs::yorkie_1(),
            yorkie_bugs::yorkie_2(),
        ]
    }

    /// Looks a bug up by name.
    pub fn by_name(name: &str) -> Option<Bug> {
        Bug::catalogue().into_iter().find(|b| b.name == name)
    }

    /// Number of interleaved events (Table 1's "#Events").
    pub fn events(&self) -> usize {
        self.workload.len()
    }

    /// The bug's workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The ER-π pruning configuration used to reproduce this bug.
    pub fn pruning_config(&self) -> &PruningConfig {
        &self.config
    }

    /// Attempts to reproduce the bug in `mode`, replaying at most `cap`
    /// interleavings (the paper caps at 10 000).
    pub fn reproduce(&self, mode: ExploreMode, cap: usize) -> Repro {
        match &self.imp {
            BugImpl::Roshi { model, check } => run(
                model.clone(),
                &self.workload,
                &self.config,
                mode,
                cap,
                *check,
            ),
            BugImpl::Orbit { model, check } => run(
                model.clone(),
                &self.workload,
                &self.config,
                mode,
                cap,
                *check,
            ),
            BugImpl::ReplicaDb { model, check } => run(
                model.clone(),
                &self.workload,
                &self.config,
                mode,
                cap,
                *check,
            ),
            BugImpl::Yorkie { model, check } => run(
                model.clone(),
                &self.workload,
                &self.config,
                mode,
                cap,
                *check,
            ),
            BugImpl::Crdts { model, check } => run(
                model.clone(),
                &self.workload,
                &self.config,
                mode,
                cap,
                *check,
            ),
        }
    }

    /// Attempts to reproduce the bug in ER-π mode under an explicit
    /// pruning configuration (ablation studies).
    pub fn reproduce_with_config(&self, config: PruningConfig, cap: usize) -> Repro {
        match &self.imp {
            BugImpl::Roshi { model, check } => run(
                model.clone(),
                &self.workload,
                &config,
                ExploreMode::ErPi,
                cap,
                *check,
            ),
            BugImpl::Orbit { model, check } => run(
                model.clone(),
                &self.workload,
                &config,
                ExploreMode::ErPi,
                cap,
                *check,
            ),
            BugImpl::ReplicaDb { model, check } => run(
                model.clone(),
                &self.workload,
                &config,
                ExploreMode::ErPi,
                cap,
                *check,
            ),
            BugImpl::Yorkie { model, check } => run(
                model.clone(),
                &self.workload,
                &config,
                ExploreMode::ErPi,
                cap,
                *check,
            ),
            BugImpl::Crdts { model, check } => run(
                model.clone(),
                &self.workload,
                &config,
                ExploreMode::ErPi,
                cap,
                *check,
            ),
        }
    }

    /// Replays the bug's workload in ER-π mode and returns the full
    /// [`Report`] — the entry point of the differential-equivalence test
    /// harness. `workers == 1` pins the sequential reference path;
    /// `workers == 0` uses all available cores. Reports produced at
    /// different worker counts must satisfy [`Report::diff`] `== None`.
    pub fn replay_report(
        &self,
        cap: usize,
        stop_on_first_violation: bool,
        workers: usize,
    ) -> Report {
        self.replay_report_with(cap, stop_on_first_violation, workers, true)
    }

    /// Like [`Bug::replay_report`], with explicit control over incremental
    /// replay: `incremental == false` pins the scratch executor, the
    /// reference side of the incremental differential-equivalence suite.
    pub fn replay_report_with(
        &self,
        cap: usize,
        stop_on_first_violation: bool,
        workers: usize,
        incremental: bool,
    ) -> Report {
        self.replay_report_opts(&ReplayOptions {
            cap,
            stop_on_first_violation,
            workers,
            incremental,
            ..ReplayOptions::default()
        })
    }

    /// The fully general replay entry point: every scheduling knob plus an
    /// optional telemetry sink, via [`ReplayOptions`].
    pub fn replay_report_opts(&self, opts: &ReplayOptions) -> Report {
        self.replay_report_checked(opts).0
    }

    /// Like [`Bug::replay_report_opts`], additionally returning the
    /// independence sanitizer's findings (`Some` iff `opts.sanitize`).
    /// The [`Report`] half must be byte-identical to a sanitizer-off
    /// replay — the sanitizer observes, it never steers.
    pub fn replay_report_checked(&self, opts: &ReplayOptions) -> (Report, Option<SanitizerReport>) {
        let plan = RunPlan {
            mode: ExploreMode::ErPi,
            cap: opts.cap,
            stop_on_first_violation: opts.stop_on_first_violation,
            workers: opts.workers,
            incremental: opts.incremental,
            telemetry: opts.telemetry.clone(),
            sanitize: opts.sanitize,
            subsumption: opts.subsumption,
            sleep_sets: opts.sleep_sets,
            chunk_size: opts.chunk_size,
            metrics: opts.metrics.clone(),
        };
        match &self.imp {
            BugImpl::Roshi { model, check } => {
                run_report(model.clone(), &self.workload, &self.config, &plan, *check)
            }
            BugImpl::Orbit { model, check } => {
                run_report(model.clone(), &self.workload, &self.config, &plan, *check)
            }
            BugImpl::ReplicaDb { model, check } => {
                run_report(model.clone(), &self.workload, &self.config, &plan, *check)
            }
            BugImpl::Yorkie { model, check } => {
                run_report(model.clone(), &self.workload, &self.config, &plan, *check)
            }
            BugImpl::Crdts { model, check } => {
                run_report(model.clone(), &self.workload, &self.config, &plan, *check)
            }
        }
    }

    /// Replays the bug as one campaign on a shared [`ExecutorService`] —
    /// the path the campaign server takes. The resulting [`Report`] must be
    /// byte-identical (under [`Report::canonical_json`]) to
    /// [`Bug::replay_report_opts`] with the same options, for any mix of
    /// co-scheduled campaigns — the `server_equivalence` suite pins this.
    ///
    /// `opts.workers` and `opts.sanitize` are ignored: the service owns the
    /// worker threads, and the sanitizer is a session-side diagnostic.
    /// `progress`, when given, receives a live snapshot every few runs —
    /// the campaign server streams these to its clients.
    ///
    /// # Errors
    ///
    /// [`ErPiError::Cancelled`] if `cancel` trips mid-campaign;
    /// [`ErPiError::ExecutorPanic`] if the model panics in a worker.
    pub fn replay_report_on(
        &self,
        service: &ExecutorService,
        priority: u8,
        cancel: Option<CancelToken>,
        progress: Option<ProgressFn>,
        opts: &ReplayOptions,
    ) -> Result<Report, ErPiError> {
        let plan = RunPlan {
            mode: ExploreMode::ErPi,
            cap: opts.cap,
            stop_on_first_violation: opts.stop_on_first_violation,
            workers: 1,
            incremental: opts.incremental,
            telemetry: opts.telemetry.clone(),
            sanitize: false,
            subsumption: opts.subsumption,
            sleep_sets: opts.sleep_sets,
            chunk_size: opts.chunk_size,
            metrics: opts.metrics.clone(),
        };
        match &self.imp {
            BugImpl::Roshi { model, check } => run_report_on(
                model.clone(),
                &self.workload,
                &self.config,
                &plan,
                *check,
                service,
                priority,
                cancel.clone(),
                progress.clone(),
            ),
            BugImpl::Orbit { model, check } => run_report_on(
                model.clone(),
                &self.workload,
                &self.config,
                &plan,
                *check,
                service,
                priority,
                cancel.clone(),
                progress.clone(),
            ),
            BugImpl::ReplicaDb { model, check } => run_report_on(
                model.clone(),
                &self.workload,
                &self.config,
                &plan,
                *check,
                service,
                priority,
                cancel.clone(),
                progress.clone(),
            ),
            BugImpl::Yorkie { model, check } => run_report_on(
                model.clone(),
                &self.workload,
                &self.config,
                &plan,
                *check,
                service,
                priority,
                cancel.clone(),
                progress.clone(),
            ),
            BugImpl::Crdts { model, check } => run_report_on(
                model.clone(),
                &self.workload,
                &self.config,
                &plan,
                *check,
                service,
                priority,
                cancel.clone(),
                progress.clone(),
            ),
        }
    }

    /// Reproduces the bug with a DFS whose frontier expansion order is
    /// `base` instead of the recorded order — modelling the run-to-run
    /// nondeterminism of restarting a real checker (used by the Figure 10
    /// micro-benchmark).
    pub fn reproduce_dfs_perturbed(&self, base: Vec<EventId>, cap: usize) -> Repro {
        match &self.imp {
            BugImpl::Roshi { model, check } => {
                run_dfs_base(model.clone(), &self.workload, base, cap, *check)
            }
            BugImpl::Orbit { model, check } => {
                run_dfs_base(model.clone(), &self.workload, base, cap, *check)
            }
            BugImpl::ReplicaDb { model, check } => {
                run_dfs_base(model.clone(), &self.workload, base, cap, *check)
            }
            BugImpl::Yorkie { model, check } => {
                run_dfs_base(model.clone(), &self.workload, base, cap, *check)
            }
            BugImpl::Crdts { model, check } => {
                run_dfs_base(model.clone(), &self.workload, base, cap, *check)
            }
        }
    }

    /// Re-executes a violating interleaving step by step and assembles the
    /// deterministic forensic bundle — exact order + fault plan, per-step
    /// state digests, first divergence from the recorded order, and the
    /// workload's happens-before graph in DOT ([`er_pi::explain_violation`]).
    ///
    /// The bundle is a pure function of `(bug, violation)`: the campaign
    /// server and the `er-pi-explain` CLI must produce byte-identical
    /// bundles for the same violation regardless of how the campaign that
    /// found it was scheduled. Returns `None` for cross-run violations,
    /// which carry no single interleaving to replay.
    pub fn explain(&self, violation: &Violation) -> Option<ForensicBundle> {
        match &self.imp {
            BugImpl::Roshi { model, .. } => {
                er_pi::explain_violation(model, &self.workload, violation)
            }
            BugImpl::Orbit { model, .. } => {
                er_pi::explain_violation(model, &self.workload, violation)
            }
            BugImpl::ReplicaDb { model, .. } => {
                er_pi::explain_violation(model, &self.workload, violation)
            }
            BugImpl::Yorkie { model, .. } => {
                er_pi::explain_violation(model, &self.workload, violation)
            }
            BugImpl::Crdts { model, .. } => {
                er_pi::explain_violation(model, &self.workload, violation)
            }
        }
    }

    /// Builds a [`CloneProbe`] over this bug's model: the final states of
    /// the recorded order, behind a type-erased deep-clone interface (the
    /// `state_clone` micro-benchmark's input).
    pub fn clone_probe(&self) -> CloneProbe {
        match &self.imp {
            BugImpl::Roshi { model, .. } => probe(model.clone(), &self.workload),
            BugImpl::Orbit { model, .. } => probe(model.clone(), &self.workload),
            BugImpl::ReplicaDb { model, .. } => probe(model.clone(), &self.workload),
            BugImpl::Yorkie { model, .. } => probe(model.clone(), &self.workload),
            BugImpl::Crdts { model, .. } => probe(model.clone(), &self.workload),
        }
    }

    /// Explores pruned interleavings until `cap` *candidates* have been
    /// examined and reports the per-algorithm pruning statistics (the
    /// Figure 9 data).
    pub fn prune_stats(&self, cap: usize) -> PruneStats {
        let mut explorer = er_pi_interleave::ErPiExplorer::new(&self.workload, &self.config);
        while explorer.stats().examined() < cap as u64 {
            if explorer.next().is_none() {
                break;
            }
        }
        explorer.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1's event counts, verbatim.
    const TABLE1: &[(&str, u32, usize)] = &[
        ("Roshi-1", 18, 9),
        ("Roshi-2", 11, 10),
        ("Roshi-3", 40, 21),
        ("OrbitDB-1", 513, 12),
        ("OrbitDB-2", 512, 8),
        ("OrbitDB-3", 1153, 15),
        ("OrbitDB-4", 583, 18),
        ("OrbitDB-5", 557, 24),
        ("ReplicaDB-1", 79, 10),
        ("ReplicaDB-2", 23, 14),
        ("Yorkie-1", 676, 17),
        ("Yorkie-2", 663, 22),
    ];

    #[test]
    fn catalogue_matches_table1() {
        let bugs = Bug::catalogue();
        assert_eq!(bugs.len(), 12);
        for (bug, &(name, issue, events)) in bugs.iter().zip(TABLE1) {
            assert_eq!(bug.name, name);
            assert_eq!(bug.issue, issue, "{name} issue number");
            assert_eq!(bug.events(), events, "{name} event count");
        }
    }

    #[test]
    fn statuses_and_reasons_match_table1() {
        let open: Vec<&str> = Bug::catalogue()
            .iter()
            .filter(|b| b.status == BugStatus::Open)
            .map(|b| b.name)
            .collect();
        assert_eq!(open, vec!["OrbitDB-1", "OrbitDB-2", "Yorkie-1"]);
        for bug in Bug::catalogue() {
            match bug.status {
                BugStatus::Open => assert!(bug.reason.is_none()),
                BugStatus::Closed => assert!(bug.reason.is_some(), "{} reason", bug.name),
            }
        }
        let misconceptions = Bug::catalogue()
            .iter()
            .filter(|b| b.reason == Some("misconception"))
            .count();
        assert_eq!(misconceptions, 6);
        let misuse = Bug::catalogue()
            .iter()
            .filter(|b| b.reason == Some("misuse"))
            .count();
        assert_eq!(misuse, 2);
    }

    #[test]
    fn recorded_orders_are_clean() {
        // The observed execution (identity order) must NOT manifest any
        // bug: users hit these only under unlucky interleavings.
        for bug in Bug::catalogue() {
            let repro = bug.reproduce(ExploreMode::ErPi, 1);
            assert_ne!(
                repro.found_at,
                Some(1),
                "{}: the recorded order must be violation-free",
                bug.name
            );
        }
    }

    #[test]
    fn by_name_finds_every_bug() {
        for &(name, _, _) in TABLE1 {
            assert!(Bug::by_name(name).is_some(), "{name}");
        }
        assert!(Bug::by_name("Nope-1").is_none());
    }

    #[test]
    fn erpi_reproduces_every_bug_within_the_cap() {
        for bug in Bug::catalogue() {
            let repro = bug.reproduce(ExploreMode::ErPi, 10_000);
            assert!(
                repro.reproduced(),
                "{} not reproduced by ER-π within 10K ({} explored)",
                bug.name,
                repro.explored
            );
        }
    }
}

//! The three Roshi bugs of Table 1.

use er_pi::PruningConfig;
use er_pi_model::{ReplicaId, Value, Workload};
use er_pi_rdl::TieBreak;

use crate::{RoshiModel, RoshiState};

use super::{Bug, BugCtx, BugImpl, BugStatus, SubjectKind};

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

fn v(s: &str) -> Value {
    Value::from(s)
}

/// Roshi-1 (issue #18): *incorrect `deleted` field in response.*
///
/// The application reads the `deleted` flag and trusts it to reflect the
/// converged state; interleavings where the read lands between a delete's
/// synchronization and a newer insert's synchronization surface a stale
/// `deleted = true` for an element that is actually present.
pub(super) fn roshi_1() -> Bug {
    let mut w = Workload::builder();
    let ins1 = w.update(r(0), "insert", [v("k"), v("m"), Value::from(10)]);
    w.sync_pair(r(0), r(1), ins1);
    let del = w.update(r(1), "delete", [v("k"), v("m"), Value::from(20)]);
    w.sync_pair(r(1), r(0), del);
    let ins2 = w.update(r(0), "insert", [v("k"), v("m"), Value::from(30)]);
    w.sync_pair(r(0), r(1), ins2);
    w.update(r(1), "read_deleted", [v("k"), v("m")]);
    w.update(r(0), "read_deleted", [v("k"), v("m")]);
    w.update(r(1), "select", [v("k")]);

    fn check(ctx: &BugCtx<'_, RoshiState>) -> Option<String> {
        if ctx.failed_ops != 0 {
            return None; // the reported run looked healthy
        }
        let (r0, r1) = (&ctx.states[0], &ctx.states[1]);
        // The report's shape: the stores converged on "present", the
        // writer's own read agreed — yet the reader replica's response
        // said deleted=true.
        let converged = r0.store.is_deleted("k", "m") == Some(false)
            && r1.store.is_deleted("k", "m") == Some(false);
        let page_ok = r1
            .last_select
            .as_ref()
            .is_some_and(|page| page.len() == 1 && page[0].member == "m");
        if converged && page_ok && r0.last_deleted == Some(false) && r1.last_deleted == Some(true) {
            return Some("reader replica served deleted=true for a present element".into());
        }
        None
    }

    Bug {
        name: "Roshi-1",
        subject: SubjectKind::Roshi,
        issue: 18,
        status: BugStatus::Closed,
        reason: Some("misconception"),
        workload: w.build(),
        config: PruningConfig::default(),
        imp: BugImpl::Roshi {
            model: RoshiModel::new(2),
            check,
        },
    }
}

/// Roshi-2 (issue #11): *CRDT semantics violated if same timestamp.*
///
/// With an order-dependent tie-break, an insert and a delete carrying the
/// same score resolve differently depending on arrival order — replicas
/// diverge permanently.
pub(super) fn roshi_2() -> Bug {
    let mut w = Workload::builder();
    let ins = w.update(r(0), "insert", [v("k"), v("m"), Value::from(50)]);
    let (send1, _x1) = w.sync_split(r(0), r(1), Some(ins));
    let del = w.update(r(1), "delete", [v("k"), v("m"), Value::from(50)]);
    w.sync_split(r(1), r(0), Some(del));
    let ins2 = w.update(r(0), "insert", [v("k"), v("m2"), Value::from(60)]);
    w.sync_split(r(0), r(1), Some(ins2));
    w.update(r(1), "select", [v("k")]);

    fn check(ctx: &BugCtx<'_, RoshiState>) -> Option<String> {
        if ctx.failed_ops != 0 {
            return None;
        }
        let a = ctx.states[0].store.is_deleted("k", "m");
        let b = ctx.states[1].store.is_deleted("k", "m");
        if a.is_some() && b.is_some() && a != b {
            return Some(format!(
                "replicas diverge on the tied element: R0 sees deleted={a:?}, R1 sees {b:?}"
            ));
        }
        None
    }

    Bug {
        name: "Roshi-2",
        subject: SubjectKind::Roshi,
        issue: 11,
        status: BugStatus::Closed,
        reason: Some("RDL issue"),
        workload: w.build(),
        // The first insert and its outbound sync form one logical write.
        config: PruningConfig::default().with_group(vec![ins, send1]),
        imp: BugImpl::Roshi {
            model: RoshiModel::with_tie(2, TieBreak::LastApplied),
            check,
        },
    }
}

/// Roshi-3 (issue #40): *roshi-server select and map order.*
///
/// The server assembles its API response by iterating a Go map, leaking the
/// local arrival order into the response. The bug needs a deep interleaving:
/// an entire insert+sync block from one writer overtaking another writer's
/// block, while the response assembly still observes a complete store.
pub(super) fn roshi_3() -> Bug {
    let mut w = Workload::builder();
    let mut groups: Vec<Vec<er_pi_model::EventId>> = Vec::new();
    // Writer R0 inserts m1..m3; writer R2 inserts m4..m6. Every insert is
    // shipped to the read replica R1 through a split sync.
    for (writer, members) in [(r(0), ["m1", "m2", "m3"]), (r(2), ["m4", "m5", "m6"])] {
        for (i, member) in members.iter().enumerate() {
            let score = Value::from(((writer.index() * 3 + i + 1) * 10) as i64);
            let ins = w.update(writer, "insert", [v("k"), v(member), score]);
            let (send, _exec) = w.sync_split(writer, r(1), Some(ins));
            groups.push(vec![ins, send]);
        }
    }
    w.update(r(1), "delete", [v("k"), v("m1"), Value::from(100)]);
    w.update(r(1), "assemble", [v("k")]);
    w.update(r(1), "select", [v("k")]);

    fn check(ctx: &BugCtx<'_, RoshiState>) -> Option<String> {
        if ctx.failed_ops != 0 {
            return None; // the reporter's run had no errors
        }
        let st = &ctx.states[1];
        // Completeness: every member arrived, m1 is tombstoned, and the
        // response was assembled over the complete store.
        if st.store.is_deleted("k", "m1") != Some(true) {
            return None;
        }
        let assembled = st.assembled.as_ref()?;
        let page = st.last_select.as_ref()?;
        if page.len() != 5 {
            return None;
        }
        // The leak, exactly as in the issue report: the response shows
        // writer R2's first member squeezed between writer R0's m3 and m2
        // — an order no client ever submitted.
        if assembled == &["m3", "m4", "m2", "m5", "m6"] {
            return Some(format!(
                "assembled response leaks arrival order: {assembled:?}"
            ));
        }
        None
    }

    let mut config = PruningConfig::default();
    for g in groups {
        config = config.with_group(g);
    }

    Bug {
        name: "Roshi-3",
        subject: SubjectKind::Roshi,
        issue: 40,
        status: BugStatus::Closed,
        reason: Some("misconception"),
        workload: w.build(),
        config,
        imp: BugImpl::Roshi {
            model: RoshiModel::new(3),
            check,
        },
    }
}

//! Subject 3 — ReplicaDB: bulk data replication between a source and a sink
//! (paper §6, Subject 3).

use std::collections::BTreeMap;

use er_pi::{OpOutcome, SystemModel};
use er_pi_model::{CanonicalEncode, Event, EventKind, ReplicaId, Value};

/// ReplicaDB's replication modes (the real tool offers `complete`,
/// `complete-atomic`, and `incremental`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationMode {
    /// Full copy: the sink is truncated and rebuilt from the staging rows.
    #[default]
    Complete,
    /// Incremental: only rows newer than the snapshot cut are applied;
    /// deletions are *not* propagated — the defect surface of issue #23
    /// ("deleted records aren't getting deleted from the sink tables").
    Incremental,
}

/// Replica 0 is the *source* database, replica 1 the *sink*; the model
/// also uses the state of the acting replica to hold the transfer job's
/// staging buffer.
#[derive(Debug, Clone, Default)]
pub struct ReplicaDbState {
    /// Table content (key → row payload).
    pub table: BTreeMap<i64, i64>,
    /// Rows read from the source, awaiting commit to the sink.
    pub staging: Vec<(i64, i64)>,
    /// Bytes the staging buffer currently occupies.
    pub staging_bytes: u64,
    /// Peak staging occupancy over the run.
    pub peak_staging_bytes: u64,
    /// Whether the job crashed with an out-of-memory error (issue #79).
    pub oom: bool,
    /// Keys captured by the incremental snapshot cut, if taken.
    pub snapshot: Option<Vec<i64>>,
}

/// The ReplicaDB subject model.
///
/// Operation vocabulary (all executed by the transfer job at the replica
/// named in the event — the source is replica 0, the sink replica 1):
///
/// * `put(key, value)` / `delete(key)` — source-side table mutations,
/// * `read_batch(from_key, to_key)` — stage source rows into the job buffer,
/// * `commit_batch()` — flush the staging buffer into the sink,
/// * `snapshot()` — take the incremental snapshot cut,
/// * `finish()` — complete the job (applies mode-specific semantics).
#[derive(Debug, Clone)]
pub struct ReplicaDbModel {
    mode: ReplicationMode,
    /// Staging memory budget in bytes (issue #79's OOM trigger).
    memory_budget: u64,
    row_bytes: u64,
}

impl ReplicaDbModel {
    /// Creates the model in the given mode with a staging budget.
    pub fn new(mode: ReplicationMode, memory_budget: u64) -> Self {
        ReplicaDbModel {
            mode,
            memory_budget,
            row_bytes: 64,
        }
    }

    /// The configured replication mode.
    pub fn mode(&self) -> ReplicationMode {
        self.mode
    }

    const SOURCE: usize = 0;
    const SINK: usize = 1;
}

impl SystemModel for ReplicaDbModel {
    type State = ReplicaDbState;

    fn replicas(&self) -> usize {
        2
    }

    fn init(&self, _replica: ReplicaId) -> ReplicaDbState {
        ReplicaDbState::default()
    }

    fn apply(&self, states: &mut [ReplicaDbState], event: &Event) -> OpOutcome {
        let EventKind::LocalUpdate { op } = &event.kind else {
            // The transfer job is point-to-point; sync events are modelled
            // as explicit read/commit batches.
            return OpOutcome::failed("replicadb uses explicit batch events");
        };
        match op.function() {
            "put" => {
                let (Some(k), Some(v)) = (
                    op.arg(0).and_then(Value::as_int),
                    op.arg(1).and_then(Value::as_int),
                ) else {
                    return OpOutcome::failed("put needs (key, value)");
                };
                states[Self::SOURCE].table.insert(k, v);
                OpOutcome::Applied
            }
            "delete" => {
                let Some(k) = op.arg(0).and_then(Value::as_int) else {
                    return OpOutcome::failed("delete needs key");
                };
                if states[Self::SOURCE].table.remove(&k).is_none() {
                    return OpOutcome::failed("delete of absent key");
                }
                OpOutcome::Applied
            }
            "read_batch" => {
                let from = op.arg(0).and_then(Value::as_int).unwrap_or(i64::MIN);
                let to = op.arg(1).and_then(Value::as_int).unwrap_or(i64::MAX);
                let rows: Vec<(i64, i64)> = states[Self::SOURCE]
                    .table
                    .range(from..=to)
                    .map(|(&k, &v)| (k, v))
                    .collect();
                let job = &mut states[Self::SINK];
                job.staging.extend(rows.iter().copied());
                job.staging_bytes += rows.len() as u64 * self.row_bytes;
                job.peak_staging_bytes = job.peak_staging_bytes.max(job.staging_bytes);
                if job.staging_bytes > self.memory_budget {
                    job.oom = true;
                    return OpOutcome::failed(format!(
                        "out of memory: staging {} bytes exceeds budget {}",
                        job.staging_bytes, self.memory_budget
                    ));
                }
                OpOutcome::Applied
            }
            "commit_batch" => {
                let job = &mut states[Self::SINK];
                if job.staging.is_empty() {
                    return OpOutcome::failed("commit with empty staging");
                }
                let rows = std::mem::take(&mut job.staging);
                job.staging_bytes = 0;
                for (k, v) in rows {
                    job.table.insert(k, v);
                }
                OpOutcome::Applied
            }
            "snapshot" => {
                let keys: Vec<i64> = states[Self::SOURCE].table.keys().copied().collect();
                states[Self::SINK].snapshot = Some(keys);
                OpOutcome::Applied
            }
            "finish" => {
                match self.mode {
                    ReplicationMode::Complete => {
                        // Complete mode re-reads the final source state:
                        // the sink ends as an exact copy.
                        let src = states[Self::SOURCE].table.clone();
                        states[Self::SINK].table = src;
                    }
                    ReplicationMode::Incremental => {
                        // Incremental mode only reconciles *upserts* since
                        // the snapshot; deletions are never propagated.
                        let src = states[Self::SOURCE].table.clone();
                        for (k, v) in src {
                            states[Self::SINK].table.insert(k, v);
                        }
                    }
                }
                OpOutcome::Applied
            }
            other => OpOutcome::failed(format!("unknown replicadb op {other}")),
        }
    }

    fn observe(&self, state: &ReplicaDbState) -> Value {
        let rows: Value = state
            .table
            .iter()
            .map(|(k, v)| Value::List(vec![Value::from(*k), Value::from(*v)]))
            .collect();
        Value::List(vec![
            rows,
            Value::from(state.oom),
            Value::from(state.peak_staging_bytes as i64),
        ])
    }

    fn state_encode(&self, state: &ReplicaDbState, out: &mut Vec<u8>) -> bool {
        state.table.encode_canonical(out);
        state.staging.encode_canonical(out);
        state.staging_bytes.encode_canonical(out);
        state.peak_staging_bytes.encode_canonical(out);
        state.oom.encode_canonical(out);
        state.snapshot.encode_canonical(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::Workload;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn run(model: &ReplicaDbModel, w: &Workload) -> Vec<ReplicaDbState> {
        let mut states = model.init_all();
        for ev in w.events() {
            model.apply(&mut states, ev);
        }
        states
    }

    #[test]
    fn complete_transfer_copies_everything() {
        let model = ReplicaDbModel::new(ReplicationMode::Complete, 10_000);
        let mut w = Workload::builder();
        w.update(r(0), "put", [Value::from(1), Value::from(10)]);
        w.update(r(0), "put", [Value::from(2), Value::from(20)]);
        w.update(r(1), "read_batch", [Value::from(0), Value::from(100)]);
        w.update(r(1), "commit_batch", [Value::Null; 0]);
        w.update(r(1), "finish", [Value::Null; 0]);
        let states = run(&model, &w.build());
        assert_eq!(states[1].table, states[0].table);
    }

    #[test]
    fn staging_overflow_is_oom() {
        let model = ReplicaDbModel::new(ReplicationMode::Complete, 2 * 64);
        let mut w = Workload::builder();
        for i in 0..5i64 {
            w.update(r(0), "put", [Value::from(i), Value::from(i)]);
        }
        // Read everything in one batch without committing: 5 rows > budget.
        w.update(r(1), "read_batch", [Value::from(0), Value::from(100)]);
        let states = run(&model, &w.build());
        assert!(states[1].oom, "staging exceeded the memory budget");
    }

    #[test]
    fn interleaved_commits_keep_memory_bounded() {
        let model = ReplicaDbModel::new(ReplicationMode::Complete, 2 * 64);
        let mut w = Workload::builder();
        for i in 0..4i64 {
            w.update(r(0), "put", [Value::from(i), Value::from(i)]);
            w.update(r(1), "read_batch", [Value::from(i), Value::from(i)]);
            w.update(r(1), "commit_batch", [Value::Null; 0]);
        }
        let states = run(&model, &w.build());
        assert!(!states[1].oom);
        assert_eq!(states[1].table.len(), 4);
    }

    #[test]
    fn incremental_mode_misses_deletes() {
        // Issue #23 distilled.
        let model = ReplicaDbModel::new(ReplicationMode::Incremental, 10_000);
        let mut w = Workload::builder();
        w.update(r(0), "put", [Value::from(1), Value::from(10)]);
        w.update(r(0), "put", [Value::from(2), Value::from(20)]);
        w.update(r(1), "read_batch", [Value::from(0), Value::from(100)]);
        w.update(r(1), "commit_batch", [Value::Null; 0]);
        w.update(r(1), "snapshot", [Value::Null; 0]);
        w.update(r(0), "delete", [Value::from(1)]);
        w.update(r(1), "finish", [Value::Null; 0]);
        let states = run(&model, &w.build());
        assert!(!states[0].table.contains_key(&1));
        assert!(
            states[1].table.contains_key(&1),
            "deleted record survives in the sink"
        );
    }

    #[test]
    fn complete_finish_reconciles_deletes() {
        let model = ReplicaDbModel::new(ReplicationMode::Complete, 10_000);
        let mut w = Workload::builder();
        w.update(r(0), "put", [Value::from(1), Value::from(10)]);
        w.update(r(1), "read_batch", [Value::from(0), Value::from(100)]);
        w.update(r(1), "commit_batch", [Value::Null; 0]);
        w.update(r(0), "delete", [Value::from(1)]);
        w.update(r(1), "finish", [Value::Null; 0]);
        let states = run(&model, &w.build());
        assert!(!states[1].table.contains_key(&1));
    }

    #[test]
    fn failed_ops_for_bad_usage() {
        let model = ReplicaDbModel::new(ReplicationMode::Complete, 1_000);
        let mut states = model.init_all();
        let mut w = Workload::builder();
        let commit = w.update(r(1), "commit_batch", [Value::Null; 0]);
        let del = w.update(r(0), "delete", [Value::from(9)]);
        let w = w.build();
        assert!(model.apply(&mut states, w.event(commit)).is_failed());
        assert!(model.apply(&mut states, w.event(del)).is_failed());
    }
}

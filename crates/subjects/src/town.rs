//! The paper's motivating example (§2.3): the town issue-reporting app.

use er_pi::{OpOutcome, SystemModel};
use er_pi_model::{CanonicalEncode, Event, EventKind, ReplicaId, Value};
use er_pi_rdl::{DeltaSync, OrSet};

/// One resident's replica: the replicated set of reported issues plus the
/// (local, non-replicated) record of what was transmitted to the
/// municipality.
#[derive(Debug, Clone)]
pub struct TownState {
    /// Replicated set of open issues.
    pub issues: OrSet<String>,
    /// What this resident transmitted, if they did.
    pub transmitted: Option<Vec<String>>,
}

/// The town issue-reporting application.
///
/// Residents `add`/`remove` issues in a replicated OR-set; `transmit` sends
/// the *currently visible* set to the municipality. The integration defect:
/// nothing forces the transmission to happen after the last synchronization,
/// so some interleavings transmit stale issues (the paper's
/// `Interleaving₂`).
///
/// ```
/// use er_pi::{Session, TestSuite};
/// use er_pi_model::{ReplicaId, Value};
/// use er_pi_subjects::TownApp;
///
/// let mut session = Session::new(TownApp::new(2));
/// let a = ReplicaId::new(0);
/// let b = ReplicaId::new(1);
/// session.record(|sys| {
///     let ev1 = sys.invoke(a, "add", [Value::from("otb")]);
///     sys.sync(a, b, ev1);
///     let ev2 = sys.invoke(b, "add", [Value::from("ph")]);
///     sys.sync(b, a, ev2);
///     let ev3 = sys.invoke(b, "remove", [Value::from("otb")]);
///     sys.sync(b, a, ev3);
///     sys.external(a, "transmit");
/// });
/// let report = session.replay(&TownApp::invariant()).unwrap();
/// assert_eq!(report.explored, 24);
/// assert!(!report.passed());
/// ```
#[derive(Debug, Clone)]
pub struct TownApp {
    replicas: usize,
}

impl TownApp {
    /// Creates the app with `replicas` residents.
    pub fn new(replicas: usize) -> Self {
        TownApp { replicas }
    }

    /// The motivating example's invariant: a transmitted issue set must not
    /// contain an issue whose removal the transmitting replica *could* have
    /// synchronized — concretely, the overturned trash bin must not reach
    /// the municipality.
    pub fn invariant() -> er_pi::TestSuite<TownState> {
        er_pi::TestSuite::new().with_assertion(
            "no-stale-issue-transmitted",
            |ctx: &er_pi::CheckContext<'_, TownState>| {
                for (replica, state) in ctx.states.iter().enumerate() {
                    if let Some(items) = &state.transmitted {
                        if items.iter().any(|i| i == "otb") {
                            return Err(format!(
                                "replica {replica} transmitted the already-fixed issue \"otb\""
                            ));
                        }
                    }
                }
                Ok(())
            },
        )
    }
}

impl Default for TownApp {
    fn default() -> Self {
        Self::new(2)
    }
}

impl SystemModel for TownApp {
    type State = TownState;

    fn replicas(&self) -> usize {
        self.replicas
    }

    fn init(&self, replica: ReplicaId) -> TownState {
        TownState {
            issues: OrSet::new(replica),
            transmitted: None,
        }
    }

    fn apply(&self, states: &mut [TownState], event: &Event) -> OpOutcome {
        let at = event.replica.index();
        match &event.kind {
            EventKind::LocalUpdate { op } => {
                let arg = op.arg(0).and_then(Value::as_str).unwrap_or("").to_owned();
                match op.function() {
                    "add" => {
                        states[at].issues.insert(arg);
                        OpOutcome::Applied
                    }
                    "remove" => match states[at].issues.remove(&arg) {
                        Some(_) => OpOutcome::Applied,
                        None => OpOutcome::failed("remove of unseen issue"),
                    },
                    other => OpOutcome::failed(format!("unknown town op {other}")),
                }
            }
            EventKind::Sync { to, .. } => {
                let snapshot = states[at].issues.clone();
                states[to.index()].issues.sync_from(&snapshot);
                OpOutcome::Applied
            }
            EventKind::External { label } if label == "transmit" => {
                let snapshot: Vec<String> =
                    states[at].issues.elements().into_iter().cloned().collect();
                states[at].transmitted = Some(snapshot.clone());
                OpOutcome::Observed(snapshot.into_iter().collect())
            }
            _ => OpOutcome::failed("unsupported event kind for TownApp"),
        }
    }

    fn observe(&self, state: &TownState) -> Value {
        let issues: Value = state.issues.elements().into_iter().cloned().collect();
        let transmitted = state
            .transmitted
            .clone()
            .map(|v| v.into_iter().collect())
            .unwrap_or(Value::Null);
        Value::List(vec![issues, transmitted])
    }

    fn state_encode(&self, state: &TownState, out: &mut Vec<u8>) -> bool {
        // Faithful encoding for subsumption: the OR-set's canonical form
        // covers entries + add-tags, tombstones, the op log, and the dot
        // context — everything a future add/remove/sync can observe — and
        // `transmitted` is the only other field `apply` reads or writes.
        state.issues.encode_canonical(out);
        state.transmitted.encode_canonical(out);
        true
    }

    fn state_size_hint(&self, state: &TownState) -> usize {
        // Proportional estimate for the incremental executor's snapshot
        // budget: tagged OR-set entries dominate, the transmitted snapshot
        // is a plain string list. Per-entry constants approximate the tag
        // and container overhead; only relative accuracy matters.
        let issues: usize = state
            .issues
            .elements()
            .into_iter()
            .map(|s| s.len() + 48)
            .sum();
        let transmitted: usize = state
            .transmitted
            .as_deref()
            .map_or(0, |v| v.iter().map(|s| s.len() + 24).sum());
        std::mem::size_of::<TownState>() + issues + transmitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi::{ExploreMode, Session};
    use er_pi_interleave::{FailedOpsRule, PruningConfig};

    fn record_motivating(session: &mut Session<TownApp>) -> [er_pi_model::EventId; 4] {
        let a = ReplicaId::new(0);
        let b = ReplicaId::new(1);
        let mut out = [er_pi_model::EventId::new(0); 4];
        session.record(|sys| {
            let ev1 = sys.invoke(a, "add", [Value::from("otb")]);
            sys.sync(a, b, ev1);
            let ev2 = sys.invoke(b, "add", [Value::from("ph")]);
            sys.sync(b, a, ev2);
            let ev3 = sys.invoke(b, "remove", [Value::from("otb")]);
            sys.sync(b, a, ev3);
            let ev4 = sys.external(a, "transmit");
            out = [ev1, ev2, ev3, ev4];
        });
        out
    }

    #[test]
    fn recorded_order_satisfies_the_invariant() {
        let mut session = Session::new(TownApp::new(2));
        record_motivating(&mut session);
        session.set_cap(1); // only the recorded (identity) order
        let report = session.replay(&TownApp::invariant()).unwrap();
        assert!(report.passed(), "the observed execution was fine");
    }

    #[test]
    fn exhaustive_replay_finds_the_stale_transmission() {
        let mut session = Session::new(TownApp::new(2));
        record_motivating(&mut session);
        let report = session.replay(&TownApp::invariant()).unwrap();
        assert_eq!(report.explored, 24);
        assert!(!report.passed());
        // The violating interleavings all place the transmit before the
        // remove's synchronization reached replica A.
        for v in &report.violations {
            assert_eq!(v.assertion, "no-stale-issue-transmitted");
        }
    }

    #[test]
    fn paper_pruned_count_19_still_finds_the_bug() {
        let mut session = Session::new(TownApp::new(2));
        let [ev1, ev2, ev3, ev4] = record_motivating(&mut session);
        session.set_config(PruningConfig::default().with_failed_ops(FailedOpsRule {
            predecessors: vec![ev4],
            successors: vec![ev1, ev2, ev3],
        }));
        let report = session.replay(&TownApp::invariant()).unwrap();
        assert_eq!(report.explored, 19, "the paper's §3.1 number");
        assert!(!report.passed(), "pruning must not lose the bug");
    }

    #[test]
    fn dfs_also_finds_it_but_explores_more() {
        let mut session = Session::new(TownApp::new(2));
        record_motivating(&mut session);
        session.set_mode(ExploreMode::Dfs);
        session.set_stop_on_first_violation(true);
        let dfs = session.replay(&TownApp::invariant()).unwrap();
        assert!(!dfs.passed());

        let mut session2 = Session::new(TownApp::new(2));
        record_motivating(&mut session2);
        session2.set_stop_on_first_violation(true);
        let erpi = session2.replay(&TownApp::invariant()).unwrap();
        assert!(!erpi.passed());
        assert!(
            erpi.first_violation_at.unwrap() <= dfs.first_violation_at.unwrap(),
            "pruned exploration reaches the bug at least as fast"
        );
    }

    #[test]
    fn size_hint_grows_with_the_issue_set() {
        let app = TownApp::new(2);
        let mut states = app.init_all();
        let empty = app.state_size_hint(&states[0]);
        let mut w = er_pi_model::Workload::builder();
        w.update(ReplicaId::new(0), "add", [Value::from("otb")]);
        let w = w.build();
        app.apply(&mut states, w.event(er_pi_model::EventId::new(0)));
        assert!(
            app.state_size_hint(&states[0]) > empty,
            "heap payload must be reflected in the budget charge"
        );
    }

    #[test]
    fn state_digest_merges_commuted_orders_but_not_lossy_lookalikes() {
        let app = TownApp::new(2);
        let a = ReplicaId::new(0);
        let b = ReplicaId::new(1);
        let mut w = er_pi_model::Workload::builder();
        w.update(a, "add", [Value::from("otb")]);
        w.update(b, "add", [Value::from("ph")]);
        let w = w.build();
        let (e0, e1) = (
            w.event(er_pi_model::EventId::new(0)),
            w.event(er_pi_model::EventId::new(1)),
        );

        // Two independent local updates on different replicas: applying
        // them in either order must reach the same digest — the hit that
        // powers subsumption.
        let mut s1 = app.init_all();
        app.apply(&mut s1, e0);
        app.apply(&mut s1, e1);
        let mut s2 = app.init_all();
        app.apply(&mut s2, e1);
        app.apply(&mut s2, e0);
        let d1 = app.state_digest(&s1).expect("TownApp encodes");
        assert_eq!(app.state_digest(&s2), Some(d1));

        // Same visible elements but a different history (an extra add that
        // was removed again) must NOT collide: the digest sees tombstones.
        let mut w2 = er_pi_model::Workload::builder();
        w2.update(a, "add", [Value::from("otb")]);
        w2.update(b, "add", [Value::from("ph")]);
        w2.update(a, "add", [Value::from("tmp")]);
        w2.update(a, "remove", [Value::from("tmp")]);
        let w2 = w2.build();
        let mut s3 = app.init_all();
        for i in 0..4 {
            app.apply(&mut s3, w2.event(er_pi_model::EventId::new(i)));
        }
        assert_eq!(
            app.observe(&s3[0]).as_list().unwrap()[0],
            app.observe(&s1[0]).as_list().unwrap()[0],
            "visible projection agrees"
        );
        assert_ne!(app.state_digest(&s3), Some(d1), "hidden state differs");
    }

    #[test]
    fn failed_remove_is_a_failed_op() {
        let mut session = Session::new(TownApp::new(2));
        let b = ReplicaId::new(1);
        session.record(|sys| {
            // Remove before any add: fails.
            let ev = sys.invoke(b, "remove", [Value::from("ghost")]);
            assert!(sys.outcome(ev).is_failed());
        });
    }
}

//! Subject 5 — the `crdts` collection library (paper §6, Subject 5).
//!
//! The original is a Java collection of CRDT data structures; applications
//! compose them freely. This model exposes one instance of each structure,
//! which is exactly the playground the paper uses to seed all five
//! misconceptions (Table 2's last row checks every column).

use std::collections::VecDeque;

use er_pi::{OpOutcome, SystemModel};
use er_pi_model::{CanonicalEncode, Event, EventKind, LamportTimestamp, ReplicaId, Value};
use er_pi_rdl::{DeltaSync, LwwRegister, OrSet, PnCounter, Rga, StateCrdt};

/// One replica of the composed CRDT collection.
#[derive(Debug, Clone)]
pub struct CrdtsState {
    /// An observed-remove set.
    pub set: OrSet<i64>,
    /// A list CRDT.
    pub list: Rga<i64>,
    /// A counter.
    pub counter: PnCounter,
    /// An LWW register.
    pub register: LwwRegister<i64>,
    /// The to-do app built on top: `(id, title)` items, where the
    /// application mints ids as `max_seen_id + 1` — the misconception-#4
    /// seed.
    pub todos: Vec<(i64, String)>,
    /// Logical clock for register writes.
    clock: u64,
    /// Pending sync payloads (snapshots, in this model).
    pub inbox: VecDeque<Box<CrdtsSnapshot>>,
}

/// The payload of a split sync: a full snapshot of the sender.
#[derive(Debug, Clone)]
pub struct CrdtsSnapshot {
    set: OrSet<i64>,
    list: Rga<i64>,
    counter: PnCounter,
    register: LwwRegister<i64>,
    todos: Vec<(i64, String)>,
}

impl CrdtsState {
    fn snapshot(&self) -> CrdtsSnapshot {
        CrdtsSnapshot {
            set: self.set.clone(),
            list: self.list.clone(),
            counter: self.counter.clone(),
            register: self.register.clone(),
            todos: self.todos.clone(),
        }
    }

    fn absorb(&mut self, snap: &CrdtsSnapshot) {
        self.set.sync_from(&snap.set);
        self.list.sync_from(&snap.list);
        self.counter.merge(&snap.counter);
        self.register.merge(&snap.register);
        for todo in &snap.todos {
            if !self.todos.contains(todo) {
                self.todos.push(todo.clone());
            }
        }
        self.todos.sort();
    }
}

/// The `crdts` collection subject model.
///
/// Operation vocabulary:
///
/// * `set_add(v)` / `set_remove(v)`,
/// * `list_push(v)` / `list_insert(idx, v)` / `list_delete(idx)` /
///   `list_move(from, to)` (correct) / `list_move_naive(from, to)`
///   (misconception #3),
/// * `counter_inc(n)` / `counter_dec(n)`,
/// * `reg_set(v)`,
/// * `todo_create(title)` — mints `max_id + 1` (misconception #4).
#[derive(Debug, Clone)]
pub struct CrdtsModel {
    replicas: usize,
}

impl CrdtsModel {
    /// Creates the model.
    pub fn new(replicas: usize) -> Self {
        CrdtsModel { replicas }
    }
}

impl SystemModel for CrdtsModel {
    type State = CrdtsState;

    fn replicas(&self) -> usize {
        self.replicas
    }

    fn init(&self, replica: ReplicaId) -> CrdtsState {
        CrdtsState {
            set: OrSet::new(replica),
            list: Rga::new(replica),
            counter: PnCounter::new(replica),
            register: LwwRegister::new(0, LamportTimestamp::new(0, replica)),
            todos: Vec::new(),
            clock: 0,
            inbox: VecDeque::new(),
        }
    }

    fn apply(&self, states: &mut [CrdtsState], event: &Event) -> OpOutcome {
        let at = event.replica.index();
        match &event.kind {
            EventKind::LocalUpdate { op } => {
                let int = |i: usize| op.arg(i).and_then(Value::as_int);
                let state = &mut states[at];
                match op.function() {
                    "set_add" => {
                        let Some(v) = int(0) else {
                            return OpOutcome::failed("set_add needs a value");
                        };
                        state.set.insert(v);
                        OpOutcome::Applied
                    }
                    "set_remove" => {
                        let Some(v) = int(0) else {
                            return OpOutcome::failed("set_remove needs a value");
                        };
                        match state.set.remove(&v) {
                            Some(_) => OpOutcome::Applied,
                            None => OpOutcome::failed("remove of unobserved element"),
                        }
                    }
                    "list_push" => {
                        let Some(v) = int(0) else {
                            return OpOutcome::failed("list_push needs a value");
                        };
                        state.list.push(v);
                        OpOutcome::Applied
                    }
                    "list_insert" => {
                        let (Some(idx), Some(v)) = (int(0), int(1)) else {
                            return OpOutcome::failed("list_insert needs (idx, value)");
                        };
                        if idx as usize > state.list.len() {
                            return OpOutcome::failed("list index out of bounds");
                        }
                        state.list.insert(idx as usize, v);
                        OpOutcome::Applied
                    }
                    "list_delete" => {
                        let Some(idx) = int(0) else {
                            return OpOutcome::failed("list_delete needs idx");
                        };
                        match state.list.delete(idx as usize) {
                            Some(_) => OpOutcome::Applied,
                            None => OpOutcome::failed("list index out of bounds"),
                        }
                    }
                    "list_move" => {
                        let (Some(from), Some(to)) = (int(0), int(1)) else {
                            return OpOutcome::failed("list_move needs (from, to)");
                        };
                        match state.list.move_item(from as usize, to as usize) {
                            Some(_) => OpOutcome::Applied,
                            None => OpOutcome::failed("move out of bounds"),
                        }
                    }
                    "list_move_naive" => {
                        let (Some(from), Some(to)) = (int(0), int(1)) else {
                            return OpOutcome::failed("list_move_naive needs (from, to)");
                        };
                        match state.list.move_naive(from as usize, to as usize) {
                            Some(_) => OpOutcome::Applied,
                            None => OpOutcome::failed("move out of bounds"),
                        }
                    }
                    "counter_inc" => {
                        state.counter.increment(int(0).unwrap_or(1) as u64);
                        OpOutcome::Applied
                    }
                    "counter_dec" => {
                        state.counter.decrement(int(0).unwrap_or(1) as u64);
                        OpOutcome::Applied
                    }
                    "reg_set" => {
                        let Some(v) = int(0) else {
                            return OpOutcome::failed("reg_set needs a value");
                        };
                        state.clock += 1;
                        let ts = LamportTimestamp::new(state.clock, event.replica);
                        state.register.set(v, ts);
                        OpOutcome::Applied
                    }
                    "todo_create" => {
                        let title = op
                            .arg(0)
                            .and_then(Value::as_str)
                            .unwrap_or("todo")
                            .to_owned();
                        // Misconception #4: mint the next sequential id.
                        let next = state.todos.iter().map(|(id, _)| *id).max().unwrap_or(0) + 1;
                        state.todos.push((next, title));
                        state.todos.sort();
                        OpOutcome::Observed(Value::from(next))
                    }
                    other => OpOutcome::failed(format!("unknown crdts op {other}")),
                }
            }
            EventKind::Sync { to, .. } => {
                let snap = states[at].snapshot();
                states[to.index()].absorb(&snap);
                OpOutcome::Applied
            }
            EventKind::SyncSend { to, .. } => {
                let snap = states[at].snapshot();
                states[to.index()].inbox.push_back(Box::new(snap));
                OpOutcome::Applied
            }
            EventKind::SyncExec { .. } => match states[at].inbox.pop_front() {
                Some(snap) => {
                    states[at].absorb(&snap);
                    OpOutcome::Applied
                }
                None => OpOutcome::failed("sync exec with empty inbox"),
            },
            EventKind::External { label } => {
                OpOutcome::failed(format!("unsupported external event {label}"))
            }
        }
    }

    /// Crash-restart recovery: the CRDT structures are the RDL's durable
    /// state and survive intact; only the volatile inbox of received but
    /// not-yet-executed sync payloads is lost. This mirrors an op-log-backed
    /// deployment where every acknowledged update is persisted before the
    /// crash, so scheduled [`CrashRestart`](er_pi_model::FaultKind) faults
    /// never break convergence for this subject — what they *can* do is
    /// turn a pending `SyncExec` into a failed op.
    fn recover(&self, states: &mut [CrdtsState], replica: ReplicaId) {
        states[replica.index()].inbox.clear();
    }

    fn observe(&self, state: &CrdtsState) -> Value {
        let set: Value = state.set.elements().into_iter().copied().collect();
        let list: Value = state.list.values().into_iter().copied().collect();
        let todos: Value = state
            .todos
            .iter()
            .map(|(id, title)| Value::List(vec![Value::from(*id), Value::from(title.clone())]))
            .collect();
        Value::List(vec![
            set,
            list,
            Value::from(state.counter.value()),
            Value::from(*state.register.get()),
            todos,
        ])
    }

    fn state_encode(&self, state: &CrdtsState, out: &mut Vec<u8>) -> bool {
        fn snapshot(snap: &CrdtsSnapshot, out: &mut Vec<u8>) {
            snap.set.encode_canonical(out);
            snap.list.encode_canonical(out);
            snap.counter.encode_canonical(out);
            snap.register.encode_canonical(out);
            snap.todos.encode_canonical(out);
        }
        // One component per structure, plus the app-level to-do list, the
        // register clock (it mints future write timestamps) and the inbox
        // of queued snapshots.
        state.set.encode_canonical(out);
        state.list.encode_canonical(out);
        state.counter.encode_canonical(out);
        state.register.encode_canonical(out);
        state.todos.encode_canonical(out);
        state.clock.encode_canonical(out);
        (state.inbox.len() as u64).encode_canonical(out);
        for snap in &state.inbox {
            snapshot(snap, out);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::Workload;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn run(model: &CrdtsModel, w: &Workload) -> Vec<CrdtsState> {
        let mut states = model.init_all();
        for ev in w.events() {
            model.apply(&mut states, ev);
        }
        states
    }

    #[test]
    fn all_structures_replicate_through_fused_sync() {
        let model = CrdtsModel::new(2);
        let mut w = Workload::builder();
        w.update(r(0), "set_add", [Value::from(7)]);
        w.update(r(0), "list_push", [Value::from(1)]);
        w.update(r(0), "counter_inc", [Value::from(3)]);
        let last = w.update(r(0), "reg_set", [Value::from(42)]);
        w.sync_pair(r(0), r(1), last);
        let states = run(&model, &w.build());
        assert_eq!(model.observe(&states[0]), model.observe(&states[1]));
        assert!(states[1].set.contains(&7));
        assert_eq!(states[1].counter.value(), 3);
        assert_eq!(*states[1].register.get(), 42);
    }

    #[test]
    fn todo_ids_clash_when_minted_concurrently() {
        // Misconception #4 at the model level.
        let model = CrdtsModel::new(2);
        let mut w = Workload::builder();
        w.update(r(0), "todo_create", [Value::from("buy milk")]);
        w.update(r(1), "todo_create", [Value::from("walk dog")]);
        w.sync_untracked(r(0), r(1));
        let states = run(&model, &w.build());
        let ids: Vec<i64> = states[1].todos.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 1], "both replicas minted id 1");
    }

    #[test]
    fn split_sync_uses_the_inbox() {
        let model = CrdtsModel::new(2);
        let mut w = Workload::builder();
        let add = w.update(r(0), "set_add", [Value::from(5)]);
        let (_, _) = w.sync_split(r(0), r(1), Some(add));
        let states = run(&model, &w.build());
        assert!(states[1].set.contains(&5));
        assert!(states[1].inbox.is_empty());
    }

    #[test]
    fn naive_move_duplicates() {
        let model = CrdtsModel::new(2);
        let mut w = Workload::builder();
        for v in [10, 20, 30] {
            w.update(r(0), "list_push", [Value::from(v)]);
        }
        w.sync_untracked(r(0), r(1));
        w.update(r(0), "list_move_naive", [Value::from(0), Value::from(2)]);
        w.update(r(1), "list_move_naive", [Value::from(0), Value::from(1)]);
        w.sync_untracked(r(0), r(1));
        w.sync_untracked(r(1), r(0));
        let states = run(&model, &w.build());
        let tens = states[0]
            .list
            .values()
            .into_iter()
            .filter(|v| **v == 10)
            .count();
        assert_eq!(tens, 2);
    }

    #[test]
    fn failed_ops_surface() {
        let model = CrdtsModel::new(1);
        let mut states = model.init_all();
        let mut w = Workload::builder();
        let bad_remove = w.update(r(0), "set_remove", [Value::from(9)]);
        let bad_delete = w.update(r(0), "list_delete", [Value::from(4)]);
        let w = w.build();
        assert!(model.apply(&mut states, w.event(bad_remove)).is_failed());
        assert!(model.apply(&mut states, w.event(bad_delete)).is_failed());
    }
}

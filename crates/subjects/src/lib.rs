//! The five evaluation subjects of the paper's §6, re-implemented on the
//! `er-pi-rdl` substrate, plus the twelve-bug catalogue of Table 1 and the
//! misconception seeding of Table 2.
//!
//! | Subject | Original | Our model |
//! |---|---|---|
//! | [`RoshiModel`] | SoundCloud Roshi (Go): LWW-set time-series event DB over Redis | [`er_pi_rdl::LwwTimeSeries`] per replica, state-merge sync |
//! | [`OrbitModel`] | OrbitDB (JavaScript): serverless Merkle-CRDT log DB | [`er_pi_rdl::MerkleLog`] per replica, delta sync, access-controller cache, repo lock lease |
//! | [`ReplicaDbModel`] | ReplicaDB (Java): bulk source→sink replication | source/sink tables with a staging buffer, complete & incremental modes |
//! | [`YorkieModel`] | Yorkie (Go): JSON document store | [`er_pi_rdl::JsonDoc`] per replica, delta sync |
//! | [`CrdtsModel`] | `crdts` (Java): CRDT collection library | OR-set + RGA + PN-counter + LWW register + to-do map |
//! | [`TownApp`] | the paper's §2.3 motivating example | OR-set of reported issues + transmission |
//!
//! The bug catalogue ([`Bug::catalogue`]) encodes every row of Table 1 as a
//! `(workload, pruning config, violation assertion)` triple; the Figure 8
//! benchmarks replay them under the three exploration modes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bugs;
mod crdts;
mod ledger;
mod misconceive;
mod orbitdb;
mod replicadb;
mod roshi;
mod town;
mod yorkie;

pub use bugs::{Bug, BugCtx, BugStatus, CloneProbe, ProgressFn, ReplayOptions, Repro, SubjectKind};
pub use crdts::{CrdtsModel, CrdtsState};
pub use ledger::{LedgerApp, LedgerState};
pub use misconceive::{detect_misconception, misconception_matrix, MatrixCell};
pub use orbitdb::{OrbitConfig, OrbitModel, OrbitState};
pub use replicadb::{ReplicaDbModel, ReplicaDbState, ReplicationMode};
pub use roshi::{RoshiModel, RoshiState};
pub use town::{TownApp, TownState};
pub use yorkie::{YorkieModel, YorkieState};

//! Misconception seeding and detection — the machinery behind Table 2.
//!
//! For every (subject, misconception) pair the paper marks, this module
//! seeds the misconception into a small workload on the subject's model
//! (following the seeding strategies of §6.2) and lets ER-π's exhaustive
//! replay detect it. Unmarked cells are *not applicable*: the subject's
//! prototype application does not exercise the relevant data model.

use er_pi::{CrossCheck, ExploreMode, Misconception, Session, SystemModel, TestSuite};
use er_pi_model::{ReplicaId, Value};
use er_pi_rdl::{LogSortOrder, TieBreak};

use crate::{
    CrdtsModel, OrbitConfig, OrbitModel, ReplicaDbModel, ReplicationMode, RoshiModel, SubjectKind,
    YorkieModel,
};

/// One cell of the Table 2 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixCell {
    /// ER-π's replay exposed the seeded misconception.
    Detected,
    /// The seeded misconception survived every interleaving undetected
    /// (should not happen — a regression signal).
    NotDetected,
    /// The subject does not exercise the relevant data model.
    NotApplicable,
}

impl std::fmt::Display for MatrixCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixCell::Detected => f.write_str("✓"),
            MatrixCell::NotDetected => f.write_str("✗"),
            MatrixCell::NotApplicable => f.write_str(" "),
        }
    }
}

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

fn detected<M: SystemModel + Sync>(
    mut session: Session<M>,
    suite: &TestSuite<M::State>,
) -> MatrixCell
where
    M::State: Send + Sync,
{
    let report = session.replay(suite).expect("workload recorded");
    if report.passed() {
        MatrixCell::NotDetected
    } else {
        MatrixCell::Detected
    }
}

/// The cross-run detector used by misconceptions #1 and #5: the target
/// replica's final state must not depend on the interleaving.
fn stable_state_suite<S>(target: usize) -> TestSuite<S> {
    TestSuite::new().with_cross(CrossCheck::same_state_across_interleavings(
        "state-stable-across-interleavings",
        target,
    ))
}

fn detect_roshi(m: Misconception) -> MatrixCell {
    match m {
        Misconception::CausalDelivery => {
            // Equal timestamps + order-dependent tie-break: replica 0's
            // state depends on which sync executes first.
            let mut session = Session::new(RoshiModel::with_tie(3, TieBreak::LastApplied));
            session.record(|sys| {
                let i1 = sys.invoke(
                    r(1),
                    "insert",
                    [Value::from("k"), Value::from("m"), Value::from(50)],
                );
                let d2 = sys.invoke(
                    r(2),
                    "delete",
                    [Value::from("k"), Value::from("m"), Value::from(50)],
                );
                sys.sync_split(r(1), r(0), Some(i1));
                sys.sync_split(r(2), r(0), Some(d2));
            });
            detected(session, &stable_state_suite(0))
        }
        Misconception::ListOrderConsistency => {
            // The assemble() response order leaks local arrival order.
            let mut session = Session::new(RoshiModel::new(2));
            session.record(|sys| {
                let ia = sys.invoke(
                    r(0),
                    "insert",
                    [Value::from("k"), Value::from("a"), Value::from(10)],
                );
                let ib = sys.invoke(
                    r(1),
                    "insert",
                    [Value::from("k"), Value::from("b"), Value::from(20)],
                );
                let _ = ia;
                sys.sync(r(1), r(0), ib);
                sys.invoke(r(0), "assemble", [Value::from("k")]);
            });
            detected(session, &stable_state_suite(0))
        }
        Misconception::MoveNoDuplication => {
            // App-level move: delete + insert under a position-suffixed
            // member id; concurrent moves duplicate the item.
            let mut session = Session::new(RoshiModel::new(2));
            session.record(|sys| {
                let base = sys.invoke(
                    r(0),
                    "insert",
                    [Value::from("k"), Value::from("item:p0"), Value::from(10)],
                );
                sys.sync(r(0), r(1), base);
                // Replica 0 moves item to p1; replica 1 moves it to p2.
                sys.invoke(
                    r(0),
                    "delete",
                    [Value::from("k"), Value::from("item:p0"), Value::from(20)],
                );
                sys.invoke(
                    r(0),
                    "insert",
                    [Value::from("k"), Value::from("item:p1"), Value::from(21)],
                );
                sys.invoke(
                    r(1),
                    "delete",
                    [Value::from("k"), Value::from("item:p0"), Value::from(30)],
                );
                let mv2 = sys.invoke(
                    r(1),
                    "insert",
                    [Value::from("k"), Value::from("item:p2"), Value::from(31)],
                );
                sys.sync(r(1), r(0), mv2);
                sys.sync_untracked(r(0), r(1));
            });
            let suite = TestSuite::new().with_assertion(
                "no-item-duplication",
                |ctx: &er_pi::CheckContext<'_, crate::RoshiState>| {
                    for (i, state) in ctx.states.iter().enumerate() {
                        let copies = state
                            .store
                            .select("k", 0, usize::MAX)
                            .into_iter()
                            .filter(|m| m.member.starts_with("item:"))
                            .count();
                        if copies > 1 {
                            return Err(format!("replica {i} holds {copies} copies of the item"));
                        }
                    }
                    Ok(())
                },
            );
            detected(session, &suite)
        }
        Misconception::SequentialIds => MatrixCell::NotApplicable,
        Misconception::CoordinationFree => {
            // Replica 0 acts (select) without coordinating: the page it
            // serves depends on the interleaving.
            let mut session = Session::new(RoshiModel::new(3));
            session.record(|sys| {
                let i1 = sys.invoke(
                    r(1),
                    "insert",
                    [Value::from("k"), Value::from("x"), Value::from(10)],
                );
                let i2 = sys.invoke(
                    r(2),
                    "insert",
                    [Value::from("k"), Value::from("y"), Value::from(20)],
                );
                sys.sync(r(1), r(0), i1);
                sys.sync(r(2), r(0), i2);
                sys.invoke(r(0), "select", [Value::from("k")]);
            });
            detected(session, &stable_state_suite(0))
        }
    }
}

fn detect_orbit(m: Misconception) -> MatrixCell {
    match m {
        Misconception::CausalDelivery => {
            // Two writers' sends race into replica 0's single exec slot.
            let mut session = Session::new(OrbitModel::new(3));
            session.record(|sys| {
                let a1 = sys.invoke(r(1), "append", [Value::from("from-1")]);
                let a2 = sys.invoke(r(2), "append", [Value::from("from-2")]);
                let send1 = sys.sync_split(r(1), r(0), Some(a1)).0;
                let _ = (send1, a2);
                // Only one send from replica 2, never executed in the
                // recorded run (arrives later); interleavings reorder it.
                sys.invoke(r(2), "append", [Value::from("tail")]);
            });
            detected(session, &stable_state_suite(0))
        }
        Misconception::ListOrderConsistency => MatrixCell::NotApplicable,
        Misconception::MoveNoDuplication => MatrixCell::NotApplicable,
        Misconception::SequentialIds => MatrixCell::NotApplicable,
        Misconception::CoordinationFree => {
            // Same-identity writers + clock-only sort: log order depends on
            // arrival, i.e. replicas need coordination they never do.
            let config = OrbitConfig {
                sort: LogSortOrder::ClockOnly,
                identities: vec!["same".into(), "same".into()],
                ..OrbitConfig::default()
            };
            let mut session = Session::new(OrbitModel::with_config(2, config));
            session.record(|sys| {
                let a0 = sys.invoke(r(0), "append", [Value::from("zero")]);
                let a1 = sys.invoke(r(1), "append", [Value::from("one")]);
                let _ = a0;
                sys.sync(r(1), r(0), a1);
            });
            detected(session, &stable_state_suite(0))
        }
    }
}

fn detect_replicadb(m: Misconception) -> MatrixCell {
    match m {
        Misconception::CausalDelivery => {
            // The job assumes batches reflect a causally consistent source:
            // interleaving source writes with reads changes the sink.
            let mut session =
                Session::new(ReplicaDbModel::new(ReplicationMode::Incremental, 10_000));
            session.record(|sys| {
                sys.invoke(r(0), "put", [Value::from(1), Value::from(10)]);
                sys.invoke(r(1), "read_batch", [Value::from(0), Value::from(100)]);
                sys.invoke(r(0), "put", [Value::from(2), Value::from(20)]);
                sys.invoke(r(0), "delete", [Value::from(1)]);
                sys.invoke(r(1), "commit_batch", [Value::Null; 0]);
            });
            detected(session, &stable_state_suite(1))
        }
        _ => MatrixCell::NotApplicable,
    }
}

fn detect_yorkie(m: Misconception) -> MatrixCell {
    match m {
        Misconception::CausalDelivery => {
            let mut session = Session::new(YorkieModel::new(3));
            session.record(|sys| {
                let s1 = sys.invoke(r(1), "set", [Value::from("k"), Value::from("v1")]);
                let s2 = sys.invoke(r(2), "set", [Value::from("k"), Value::from("v2")]);
                sys.sync_split(r(1), r(0), Some(s1));
                let send = sys.sync_split(r(2), r(0), Some(s2)).0;
                let _ = send;
            });
            detected(session, &stable_state_suite(0))
        }
        Misconception::CoordinationFree => {
            // Replica 0 writes locally without coordinating; whether its
            // write survives LWW depends on when the incoming sync bumped
            // its clock.
            let mut session = Session::new(YorkieModel::new(2));
            session.record(|sys| {
                let s1 = sys.invoke(r(1), "set", [Value::from("k"), Value::from("remote")]);
                sys.sync_split(r(1), r(0), Some(s1));
                sys.invoke(r(0), "set", [Value::from("k"), Value::from("local")]);
            });
            detected(session, &stable_state_suite(0))
        }
        _ => MatrixCell::NotApplicable,
    }
}

fn detect_crdts(m: Misconception) -> MatrixCell {
    match m {
        Misconception::CausalDelivery => {
            // Two writers' updates race into replica 0 through independent
            // sync messages; the "network delivers causally" assumption
            // would require replica 0's state to be order-independent.
            let mut session = Session::new(CrdtsModel::new(3));
            session.record(|sys| {
                let u1 = sys.invoke(r(1), "reg_set", [Value::from(1)]);
                let u2 = sys.invoke(r(2), "reg_set", [Value::from(2)]);
                sys.sync_split(r(1), r(0), Some(u1));
                sys.sync_split(r(2), r(0), Some(u2));
            });
            detected(session, &stable_state_suite(0))
        }
        Misconception::ListOrderConsistency => {
            // Element order depends on when the peer's clock observed the
            // base sync.
            let mut session = Session::new(CrdtsModel::new(2));
            session.record(|sys| {
                let p0 = sys.invoke(r(0), "list_push", [Value::from(10)]);
                sys.sync(r(0), r(1), p0);
                sys.invoke(r(1), "list_push", [Value::from(20)]);
                sys.invoke(r(0), "list_push", [Value::from(30)]);
                sys.sync_untracked(r(1), r(0));
                sys.sync_untracked(r(0), r(1));
            });
            detected(session, &stable_state_suite(0))
        }
        Misconception::MoveNoDuplication => {
            let mut session = Session::new(CrdtsModel::new(2));
            session.record(|sys| {
                for v in [10, 20, 30] {
                    sys.invoke(r(0), "list_push", [Value::from(v)]);
                }
                sys.sync_untracked(r(0), r(1));
                sys.invoke(r(0), "list_move_naive", [Value::from(0), Value::from(2)]);
                sys.invoke(r(1), "list_move_naive", [Value::from(0), Value::from(1)]);
                sys.sync_untracked(r(0), r(1));
                sys.sync_untracked(r(1), r(0));
            });
            let suite = TestSuite::new().with_assertion(
                "no-move-duplication",
                |ctx: &er_pi::CheckContext<'_, crate::CrdtsState>| {
                    for (i, state) in ctx.states.iter().enumerate() {
                        let values = state.list.values();
                        let mut seen = Vec::new();
                        for v in values {
                            if seen.contains(&v) {
                                return Err(format!("replica {i} duplicated element {v}"));
                            }
                            seen.push(v);
                        }
                    }
                    Ok(())
                },
            );
            detected(session, &suite)
        }
        Misconception::SequentialIds => {
            let mut session = Session::new(CrdtsModel::new(2));
            session.record(|sys| {
                sys.invoke(r(0), "todo_create", [Value::from("buy milk")]);
                sys.invoke(r(1), "todo_create", [Value::from("walk dog")]);
                sys.sync_untracked(r(0), r(1));
                sys.sync_untracked(r(1), r(0));
            });
            let suite = TestSuite::new().with_assertion(
                "todo-ids-unique",
                |ctx: &er_pi::CheckContext<'_, crate::CrdtsState>| {
                    for (i, state) in ctx.states.iter().enumerate() {
                        let mut ids: Vec<i64> = state.todos.iter().map(|(id, _)| *id).collect();
                        let before = ids.len();
                        ids.dedup();
                        if ids.len() != before {
                            return Err(format!("replica {i} has clashing to-do ids"));
                        }
                    }
                    Ok(())
                },
            );
            detected(session, &suite)
        }
        Misconception::CoordinationFree => {
            // Replica 0 never coordinates back; whether peer updates have
            // arrived by the end depends on the interleaving of local
            // updates and their syncs.
            let mut session = Session::new(CrdtsModel::new(3));
            session.record(|sys| {
                let u1 = sys.invoke(r(1), "counter_inc", [Value::from(1)]);
                sys.sync(r(1), r(0), u1);
                sys.invoke(r(2), "counter_inc", [Value::from(2)]);
                sys.invoke(r(0), "reg_set", [Value::from(7)]);
                // Untracked sync: free to interleave before the update it
                // would have shipped — exactly the uncoordinated race.
                sys.sync_untracked(r(2), r(0));
            });
            detected(session, &stable_state_suite(0))
        }
    }
}

/// Seeds and detects one (subject, misconception) cell.
pub fn detect_misconception(subject: SubjectKind, m: Misconception) -> MatrixCell {
    match subject {
        SubjectKind::Roshi => detect_roshi(m),
        SubjectKind::OrbitDb => detect_orbit(m),
        SubjectKind::ReplicaDb => detect_replicadb(m),
        SubjectKind::Yorkie => detect_yorkie(m),
        SubjectKind::Crdts => detect_crdts(m),
    }
}

/// Computes the full Table 2 matrix.
pub fn misconception_matrix() -> Vec<(SubjectKind, [MatrixCell; 5])> {
    SubjectKind::all()
        .into_iter()
        .map(|subject| {
            let mut row = [MatrixCell::NotApplicable; 5];
            for (i, m) in Misconception::all().into_iter().enumerate() {
                row[i] = detect_misconception(subject, m);
            }
            (subject, row)
        })
        .collect()
}

/// Silences the unused warning for ExploreMode (re-exported convenience).
const _: Option<ExploreMode> = None;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_marked_cells_are_detected() {
        // The paper's Table 2, row by row.
        let expected: [(SubjectKind, [bool; 5]); 5] = [
            (SubjectKind::Roshi, [true, true, true, false, true]),
            (SubjectKind::OrbitDb, [true, false, false, false, true]),
            (SubjectKind::ReplicaDb, [true, false, false, false, false]),
            (SubjectKind::Yorkie, [true, false, false, false, true]),
            (SubjectKind::Crdts, [true, true, true, true, true]),
        ];
        for (subject, marks) in expected {
            for (i, &marked) in marks.iter().enumerate() {
                let m = Misconception::all()[i];
                let cell = detect_misconception(subject, m);
                if marked {
                    assert_eq!(
                        cell,
                        MatrixCell::Detected,
                        "{subject:?} should detect misconception {m}"
                    );
                } else {
                    assert_eq!(
                        cell,
                        MatrixCell::NotApplicable,
                        "{subject:?} does not exercise misconception {m}"
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_has_five_rows() {
        let matrix = misconception_matrix();
        assert_eq!(matrix.len(), 5);
        let detected: usize = matrix
            .iter()
            .flat_map(|(_, row)| row.iter())
            .filter(|c| **c == MatrixCell::Detected)
            .count();
        assert_eq!(detected, 14, "Table 2 has 14 check marks");
    }
}

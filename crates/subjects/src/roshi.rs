//! Subject 1 — SoundCloud's Roshi: a time-series event database with
//! LWW-set semantics (paper §6, Subject 1).

use std::collections::VecDeque;

use er_pi::{OpOutcome, SystemModel};
use er_pi_model::CanonicalEncode;
use er_pi_model::{Event, EventKind, ReplicaId, Value};
use er_pi_rdl::{LwwTimeSeries, ScoredMember, StateCrdt, TieBreak, TsOp};

/// One Roshi replica: the LWW time-series store plus the application-level
/// read results the assertions inspect.
#[derive(Debug, Clone)]
pub struct RoshiState {
    /// The replicated store.
    pub store: LwwTimeSeries,
    /// Pending sync payloads (send → exec message queue).
    pub inbox: VecDeque<Vec<TsOp>>,
    /// Result of the last `select`.
    pub last_select: Option<Vec<ScoredMember>>,
    /// Result of the last `read_deleted` — the response field of issue #18.
    pub last_deleted: Option<bool>,
    /// Result of the last `assemble`: members in *local map iteration
    /// order* — the roshi-server response assembly of issue #40, which
    /// leaks Go map ordering into the API.
    pub assembled: Option<Vec<String>>,
}

/// The Roshi subject model.
///
/// Operation vocabulary (`LocalUpdate` functions):
///
/// * `insert(key, member, score)` / `delete(key, member, score)`,
/// * `select(key)` — records the page into [`RoshiState::last_select`],
/// * `read_deleted(key, member)` — records the `deleted` response field,
/// * `assemble(key)` — builds a response in local first-insertion order
///   (the Go-map-order leak of Roshi-3).
///
/// Synchronization: fused `Sync` merges stores; split `SyncSend`/`SyncExec`
/// ship the op log through a per-replica inbox.
#[derive(Debug, Clone)]
pub struct RoshiModel {
    replicas: usize,
    tie: TieBreak,
}

impl RoshiModel {
    /// Creates the model with Roshi's documented insert-wins tie policy.
    pub fn new(replicas: usize) -> Self {
        RoshiModel {
            replicas,
            tie: TieBreak::InsertWins,
        }
    }

    /// Creates the model with an explicit tie policy (Roshi-2 uses the
    /// defective order-dependent [`TieBreak::LastApplied`]).
    pub fn with_tie(replicas: usize, tie: TieBreak) -> Self {
        RoshiModel { replicas, tie }
    }
}

fn args3(op: &er_pi_model::OpDescriptor) -> Option<(String, String, u64)> {
    Some((
        op.arg(0)?.as_str()?.to_owned(),
        op.arg(1)?.as_str()?.to_owned(),
        op.arg(2)?.as_int()? as u64,
    ))
}

impl SystemModel for RoshiModel {
    type State = RoshiState;

    fn replicas(&self) -> usize {
        self.replicas
    }

    fn init(&self, _replica: ReplicaId) -> RoshiState {
        RoshiState {
            store: LwwTimeSeries::new(self.tie),
            inbox: VecDeque::new(),
            last_select: None,
            last_deleted: None,
            assembled: None,
        }
    }

    fn apply(&self, states: &mut [RoshiState], event: &Event) -> OpOutcome {
        let at = event.replica.index();
        match &event.kind {
            EventKind::LocalUpdate { op } => match op.function() {
                "insert" => {
                    let Some((key, member, score)) = args3(op) else {
                        return OpOutcome::failed("insert needs (key, member, score)");
                    };
                    if states[at].store.insert(&key, &member, score) {
                        OpOutcome::Applied
                    } else {
                        OpOutcome::failed("stale insert lost LWW resolution")
                    }
                }
                "delete" => {
                    let Some((key, member, score)) = args3(op) else {
                        return OpOutcome::failed("delete needs (key, member, score)");
                    };
                    if states[at].store.delete(&key, &member, score) {
                        OpOutcome::Applied
                    } else {
                        OpOutcome::failed("stale delete lost LWW resolution")
                    }
                }
                "select" => {
                    let key = op.arg(0).and_then(Value::as_str).unwrap_or("k");
                    let page = states[at].store.select(key, 0, usize::MAX);
                    states[at].last_select = Some(page.clone());
                    OpOutcome::Observed(page.into_iter().map(|m| Value::from(m.member)).collect())
                }
                "read_deleted" => {
                    let key = op.arg(0).and_then(Value::as_str).unwrap_or("k");
                    let member = op.arg(1).and_then(Value::as_str).unwrap_or("");
                    let flag = states[at].store.is_deleted(key, member);
                    states[at].last_deleted = flag;
                    OpOutcome::Observed(flag.map(Value::from).unwrap_or(Value::Null))
                }
                "assemble" => {
                    let key = op.arg(0).and_then(Value::as_str).unwrap_or("k");
                    // First-insertion (map iteration) order of visible
                    // members: depends on the local apply history.
                    let mut order: Vec<String> = Vec::new();
                    for tsop in states[at].store.log() {
                        if let TsOp::Insert { key: k, member, .. } = tsop {
                            if k == key && !order.contains(member) {
                                order.push(member.clone());
                            }
                        }
                    }
                    let visible: Vec<String> = order
                        .into_iter()
                        .filter(|m| states[at].store.is_deleted(key, m) == Some(false))
                        .collect();
                    states[at].assembled = Some(visible.clone());
                    OpOutcome::Observed(visible.into_iter().collect())
                }
                other => OpOutcome::failed(format!("unknown roshi op {other}")),
            },
            EventKind::Sync { to, .. } => {
                let snapshot = states[at].store.clone();
                states[to.index()].store.merge(&snapshot);
                OpOutcome::Applied
            }
            EventKind::SyncSend { to, .. } => {
                let ops = states[at].store.log().to_vec();
                states[to.index()].inbox.push_back(ops);
                OpOutcome::Applied
            }
            EventKind::SyncExec { .. } => match states[at].inbox.pop_front() {
                Some(ops) => {
                    for op in &ops {
                        states[at].store.apply(op);
                    }
                    OpOutcome::Applied
                }
                None => OpOutcome::failed("sync exec before any send arrived"),
            },
            EventKind::External { label } => {
                OpOutcome::failed(format!("unsupported external event {label}"))
            }
        }
    }

    fn observe(&self, state: &RoshiState) -> Value {
        let keys: Vec<Value> = state
            .store
            .keys()
            .map(|k| {
                let members: Value = state
                    .store
                    .select(k, 0, usize::MAX)
                    .into_iter()
                    .map(|m| Value::from(m.member))
                    .collect();
                Value::List(vec![Value::from(k), members])
            })
            .collect();
        let selected = state
            .last_select
            .as_ref()
            .map(|page| page.iter().map(|m| Value::from(m.member.clone())).collect())
            .unwrap_or(Value::Null);
        let deleted = state.last_deleted.map(Value::from).unwrap_or(Value::Null);
        let assembled = state
            .assembled
            .as_ref()
            .map(|v| v.iter().cloned().collect())
            .unwrap_or(Value::Null);
        Value::List(vec![Value::List(keys), selected, deleted, assembled])
    }

    fn state_encode(&self, state: &RoshiState, out: &mut Vec<u8>) -> bool {
        // Faithful: the store's canonical form covers cells + tie policy +
        // the op log (which `assemble` iterates), and the remaining fields
        // are exactly the read results and inbox the assertions and future
        // `SyncExec`s observe.
        state.store.encode_canonical(out);
        state.inbox.encode_canonical(out);
        state.last_select.encode_canonical(out);
        state.last_deleted.encode_canonical(out);
        state.assembled.encode_canonical(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi::Session;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn insert_select_through_the_model() {
        let mut session = Session::new(RoshiModel::new(2));
        session.record(|sys| {
            sys.invoke(
                r(0),
                "insert",
                [Value::from("k"), Value::from("m1"), Value::from(10)],
            );
            let sel = sys.invoke(r(0), "select", [Value::from("k")]);
            assert!(matches!(sys.outcome(sel), OpOutcome::Observed(_)));
            assert_eq!(sys.state(r(0)).last_select.as_ref().unwrap().len(), 1);
        });
    }

    #[test]
    fn split_sync_ships_the_log() {
        let mut session = Session::new(RoshiModel::new(2));
        session.record(|sys| {
            let ins = sys.invoke(
                r(0),
                "insert",
                [Value::from("k"), Value::from("m"), Value::from(5)],
            );
            sys.sync_split(r(0), r(1), Some(ins));
            assert_eq!(sys.state(r(1)).store.key_len("k"), 1);
        });
    }

    #[test]
    fn sync_exec_without_send_fails() {
        let model = RoshiModel::new(2);
        let mut w = er_pi_model::Workload::builder();
        let send = w.sync_send(r(0), r(1), None);
        let exec = w.sync_exec(r(1), r(0), send);
        let w = w.build();
        // Execute the exec BEFORE the send: a failed op.
        let mut states = model.init_all();
        let out = model.apply(&mut states, w.event(exec));
        assert!(out.is_failed());
        let out = model.apply(&mut states, w.event(send));
        assert!(!out.is_failed());
    }

    #[test]
    fn fused_sync_merges_stores() {
        let model = RoshiModel::new(2);
        let mut w = er_pi_model::Workload::builder();
        let ins = w.update(
            r(0),
            "insert",
            [Value::from("k"), Value::from("m"), Value::from(5)],
        );
        let sync = w.sync_pair(r(0), r(1), ins);
        let w = w.build();
        let mut states = model.init_all();
        model.apply(&mut states, w.event(ins));
        model.apply(&mut states, w.event(sync));
        assert_eq!(states[1].store.key_len("k"), 1);
    }

    #[test]
    fn assemble_order_depends_on_local_history() {
        let model = RoshiModel::new(2);
        let mk = |first: &str, second: &str| {
            let mut states = model.init_all();
            let mut w = er_pi_model::Workload::builder();
            let i1 = w.update(
                r(0),
                "insert",
                [Value::from("k"), Value::from(first), Value::from(5)],
            );
            let i2 = w.update(
                r(0),
                "insert",
                [Value::from("k"), Value::from(second), Value::from(6)],
            );
            let asm = w.update(r(0), "assemble", [Value::from("k")]);
            let w = w.build();
            for ev in [i1, i2, asm] {
                model.apply(&mut states, w.event(ev));
            }
            states[0].assembled.clone().unwrap()
        };
        assert_eq!(mk("a", "b"), vec!["a", "b"]);
        assert_eq!(mk("b", "a"), vec!["b", "a"], "iteration order leaks");
    }

    #[test]
    fn observe_is_stable_for_equal_states() {
        let model = RoshiModel::new(1);
        let s1 = model.init(r(0));
        let s2 = model.init(r(0));
        assert_eq!(model.observe(&s1), model.observe(&s2));
    }
}

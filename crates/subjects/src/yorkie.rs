//! Subject 4 — Yorkie: a replicated JSON document store (paper §6,
//! Subject 4).

use std::collections::{BTreeMap, VecDeque};

use er_pi::{OpOutcome, SystemModel};
use er_pi_model::{CanonicalEncode, Event, EventKind, ReplicaId, Value};
use er_pi_rdl::{DeltaSync, DocOp, JsonDoc};

/// One Yorkie replica: the document plus a sync inbox.
#[derive(Debug, Clone)]
pub struct YorkieState {
    /// The replicated JSON document.
    pub doc: JsonDoc,
    /// Pending sync payloads.
    pub inbox: VecDeque<Vec<DocOp>>,
    /// Keys captured by the last `snapshot_keys` read.
    pub last_snapshot: Option<Vec<String>>,
}

/// The Yorkie subject model.
///
/// Operation vocabulary (paths are dot-separated strings):
///
/// * `set(path, value)` — LWW-set a primitive,
/// * `set_object(path, k1, v1, k2, v2, …)` — whole-subtree replace (the
///   Yorkie-2 misuse surface),
/// * `remove(path)`,
/// * `new_array(path)`, `push(path, value)`,
/// * `move(path, from, to)` — correct `MoveAfter`,
/// * `move_naive(path, from, to)` — delete+insert move (Yorkie-1 defect).
#[derive(Debug, Clone)]
pub struct YorkieModel {
    replicas: usize,
}

impl YorkieModel {
    /// Creates the model.
    pub fn new(replicas: usize) -> Self {
        YorkieModel { replicas }
    }
}

fn split_path(raw: &str) -> Vec<&str> {
    raw.split('.').filter(|s| !s.is_empty()).collect()
}

fn doc_result(result: Result<impl Sized, er_pi_rdl::DocError>) -> OpOutcome {
    match result {
        Ok(_) => OpOutcome::Applied,
        Err(e) => OpOutcome::failed(e.to_string()),
    }
}

impl SystemModel for YorkieModel {
    type State = YorkieState;

    fn replicas(&self) -> usize {
        self.replicas
    }

    fn init(&self, replica: ReplicaId) -> YorkieState {
        YorkieState {
            doc: JsonDoc::new(replica),
            inbox: VecDeque::new(),
            last_snapshot: None,
        }
    }

    fn apply(&self, states: &mut [YorkieState], event: &Event) -> OpOutcome {
        let at = event.replica.index();
        match &event.kind {
            EventKind::LocalUpdate { op } => {
                let path_raw = op.arg(0).and_then(Value::as_str).unwrap_or("").to_owned();
                let path = split_path(&path_raw);
                if path.is_empty() {
                    return OpOutcome::failed("empty document path");
                }
                let doc = &mut states[at].doc;
                match op.function() {
                    "set" => {
                        let v = op.arg(1).cloned().unwrap_or(Value::Null);
                        doc_result(doc.set(&path, v))
                    }
                    "set_object" => {
                        let mut entries = BTreeMap::new();
                        let mut i = 1;
                        while let (Some(k), Some(v)) = (op.arg(i), op.arg(i + 1)) {
                            let Some(key) = k.as_str() else {
                                return OpOutcome::failed("set_object keys must be strings");
                            };
                            entries.insert(key.to_owned(), v.clone());
                            i += 2;
                        }
                        doc_result(doc.set_object(&path, entries))
                    }
                    "remove" => doc_result(doc.remove(&path)),
                    "snapshot_keys" => {
                        let Some(er_pi_rdl::JsonValue::Object(map)) = doc.get(&path) else {
                            return OpOutcome::failed("snapshot_keys needs an object path");
                        };
                        let keys: Vec<String> = map.keys().cloned().collect();
                        states[at].last_snapshot = Some(keys.clone());
                        OpOutcome::Observed(keys.into_iter().collect())
                    }
                    // The Yorkie-2 misuse pattern: read the object and
                    // write it back wholesale ("normalize settings"). Any
                    // concurrent sibling write older than this refresh is
                    // silently dropped.
                    "refresh_object" => {
                        let Some(er_pi_rdl::JsonValue::Object(map)) = doc.get(&path) else {
                            return OpOutcome::failed("refresh_object needs an object path");
                        };
                        let entries: BTreeMap<String, Value> = map
                            .iter()
                            .filter_map(|(k, v)| match v {
                                er_pi_rdl::JsonValue::Prim(p) => Some((k.clone(), p.clone())),
                                _ => None,
                            })
                            .collect();
                        doc_result(doc.set_object(&path, entries))
                    }
                    "new_array" => doc_result(doc.new_array(&path)),
                    "push" => {
                        let v = op.arg(1).cloned().unwrap_or(Value::Null);
                        doc_result(doc.arr_push(&path, v))
                    }
                    "move" => {
                        let (Some(from), Some(to)) = (
                            op.arg(1).and_then(Value::as_int),
                            op.arg(2).and_then(Value::as_int),
                        ) else {
                            return OpOutcome::failed("move needs (path, from, to)");
                        };
                        doc_result(doc.arr_move(&path, from as usize, to as usize))
                    }
                    "move_naive" => {
                        let (Some(from), Some(to)) = (
                            op.arg(1).and_then(Value::as_int),
                            op.arg(2).and_then(Value::as_int),
                        ) else {
                            return OpOutcome::failed("move_naive needs (path, from, to)");
                        };
                        doc_result(doc.arr_move_naive(&path, from as usize, to as usize))
                    }
                    other => OpOutcome::failed(format!("unknown yorkie op {other}")),
                }
            }
            EventKind::Sync { to, .. } => {
                let snapshot = states[at].doc.clone();
                states[to.index()].doc.sync_from(&snapshot);
                OpOutcome::Applied
            }
            EventKind::SyncSend { to, .. } => {
                let receiver_version = states[to.index()].doc.version().clone();
                let ops = states[at].doc.missing_since(&receiver_version);
                states[to.index()].inbox.push_back(ops);
                OpOutcome::Applied
            }
            EventKind::SyncExec { .. } => match states[at].inbox.pop_front() {
                Some(ops) => {
                    for op in &ops {
                        states[at].doc.apply_op(op);
                    }
                    OpOutcome::Applied
                }
                None => OpOutcome::failed("sync exec with empty inbox"),
            },
            EventKind::External { label } => {
                OpOutcome::failed(format!("unsupported external event {label}"))
            }
        }
    }

    fn observe(&self, state: &YorkieState) -> Value {
        // A canonical rendering of the document snapshot.
        fn render(v: &er_pi_rdl::JsonValue) -> Value {
            match v {
                er_pi_rdl::JsonValue::Prim(p) => p.clone(),
                er_pi_rdl::JsonValue::Object(map) => map
                    .iter()
                    .map(|(k, v)| Value::List(vec![Value::from(k.clone()), render(v)]))
                    .collect(),
                er_pi_rdl::JsonValue::Array(items) => Value::List(items.clone()),
            }
        }
        render(&state.doc.root())
    }

    fn state_encode(&self, state: &YorkieState, out: &mut Vec<u8>) -> bool {
        // The document's canonical form keeps the per-entry LWW timestamps
        // (they steer future conflict resolution), not just the rendered
        // snapshot `observe` exposes.
        state.doc.encode_canonical(out);
        state.inbox.encode_canonical(out);
        state.last_snapshot.encode_canonical(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::Workload;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn run(model: &YorkieModel, w: &Workload) -> Vec<YorkieState> {
        let mut states = model.init_all();
        for ev in w.events() {
            model.apply(&mut states, ev);
        }
        states
    }

    #[test]
    fn set_and_sync() {
        let model = YorkieModel::new(2);
        let mut w = Workload::builder();
        let set = w.update(
            r(0),
            "set",
            [Value::from("profile.name"), Value::from("ada")],
        );
        w.sync_pair(r(0), r(1), set);
        let states = run(&model, &w.build());
        assert_eq!(model.observe(&states[0]), model.observe(&states[1]));
    }

    #[test]
    fn arrays_and_correct_move() {
        let model = YorkieModel::new(2);
        let mut w = Workload::builder();
        w.update(r(0), "new_array", [Value::from("l")]);
        for v in ["x", "y", "z"] {
            w.update(r(0), "push", [Value::from("l"), Value::from(v)]);
        }
        w.update(
            r(0),
            "move",
            [Value::from("l"), Value::from(0), Value::from(2)],
        );
        let states = run(&model, &w.build());
        let doc = states[0].doc.get(&["l"]).unwrap();
        assert_eq!(doc.as_array().unwrap().len(), 3);
    }

    #[test]
    fn naive_move_duplicates_under_concurrency() {
        let model = YorkieModel::new(2);
        let mut w = Workload::builder();
        w.update(r(0), "new_array", [Value::from("l")]);
        for v in ["x", "y", "z"] {
            w.update(r(0), "push", [Value::from("l"), Value::from(v)]);
        }
        let m0 = w.update(
            r(0),
            "move_naive",
            [Value::from("l"), Value::from(0), Value::from(2)],
        );
        let w_pre = w.len();
        let _ = w_pre;
        // Sync the base list to replica 1 BEFORE the move, then both move.
        // Built linearly here for clarity: sync first, then moves, then
        // cross-sync.
        let mut w2 = Workload::builder();
        let mk_arr = w2.update(r(0), "new_array", [Value::from("l")]);
        let mut last = mk_arr;
        for v in ["x", "y", "z"] {
            last = w2.update(r(0), "push", [Value::from("l"), Value::from(v)]);
        }
        w2.sync_pair(r(0), r(1), last);
        w2.update(
            r(0),
            "move_naive",
            [Value::from("l"), Value::from(0), Value::from(2)],
        );
        w2.update(
            r(1),
            "move_naive",
            [Value::from("l"), Value::from(0), Value::from(1)],
        );
        w2.sync_untracked(r(0), r(1));
        w2.sync_untracked(r(1), r(0));
        let states = run(&model, &w2.build());
        let arr = states[0]
            .doc
            .get(&["l"])
            .unwrap()
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(
            arr.iter().filter(|v| **v == Value::from("x")).count(),
            2,
            "naive move duplicated under concurrency: {arr:?}"
        );
        let _ = m0;
    }

    #[test]
    fn bad_paths_fail() {
        let model = YorkieModel::new(1);
        let mut states = model.init_all();
        let mut w = Workload::builder();
        let bad = w.update(r(0), "push", [Value::from("missing"), Value::from(1)]);
        let empty = w.update(r(0), "set", [Value::from(""), Value::from(1)]);
        let w = w.build();
        assert!(model.apply(&mut states, w.event(bad)).is_failed());
        assert!(model.apply(&mut states, w.event(empty)).is_failed());
    }

    #[test]
    fn set_object_replaces_subtree() {
        let model = YorkieModel::new(1);
        let mut w = Workload::builder();
        w.update(r(0), "set", [Value::from("obj.a"), Value::from(1)]);
        w.update(r(0), "set", [Value::from("obj.b"), Value::from(2)]);
        w.update(
            r(0),
            "set_object",
            [Value::from("obj"), Value::from("a"), Value::from(10)],
        );
        let states = run(&model, &w.build());
        let obj = states[0].doc.get(&["obj"]).unwrap();
        let map = obj.as_object().unwrap();
        assert_eq!(map.len(), 1, "sibling b was dropped by the replace");
    }
}

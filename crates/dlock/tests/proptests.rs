//! Property tests for the distributed-lock substrate.

use std::sync::Arc;

use proptest::prelude::*;

use er_pi_dlock::{ManualTime, OrderSequencer, RedisLite, Redlock, RedlockConfig};

proptest! {
    /// Whatever permutation of tickets the threads receive, the sequencer
    /// forces execution in ticket order.
    #[test]
    fn sequencer_orders_any_ticket_assignment(
        assignment in Just((0u64..10).collect::<Vec<_>>()).prop_shuffle(),
        threads in 2usize..4,
    ) {
        let seq = Arc::new(OrderSequencer::new(RedisLite::new(), "prop"));
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let chunks: Vec<Vec<u64>> = assignment
            .chunks(assignment.len().div_ceil(threads))
            .map(|c| {
                let mut v = c.to_vec();
                // Each thread must process its own tickets in increasing
                // order (a thread is a replica's program order).
                v.sort_unstable();
                v
            })
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|tickets| {
                let seq = Arc::clone(&seq);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for t in tickets {
                        seq.run_in_order(t, || log.lock().push(t));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(log.lock().clone(), (0u64..10).collect::<Vec<_>>());
    }

    /// TTL bookkeeping: a lock acquired under manual time is held exactly
    /// until its lease expires, regardless of the advance pattern.
    #[test]
    fn lease_expiry_is_exact(advances in proptest::collection::vec(1u64..50, 1..12)) {
        let time = ManualTime::new(0);
        let store = RedisLite::with_time(Arc::new(time.clone()));
        let config = RedlockConfig { ttl_ms: 100, ..RedlockConfig::default() };
        let lock = Redlock::new(vec![store], "L", config);
        let _guard = lock.try_acquire().expect("fresh lock");
        let mut elapsed = 0u64;
        for adv in advances {
            time.advance(adv);
            elapsed += adv;
            prop_assert_eq!(
                lock.is_held(),
                elapsed < 100,
                "elapsed {} ms",
                elapsed
            );
        }
    }

    /// INCR produces a strictly increasing, gap-free sequence regardless of
    /// interleaved reads and unrelated writes.
    #[test]
    fn incr_sequence_is_dense(ops in proptest::collection::vec(0u8..3, 1..40)) {
        let store = RedisLite::new();
        let mut expected = 0i64;
        for op in ops {
            match op {
                0 => {
                    expected += 1;
                    prop_assert_eq!(store.incr("c"), expected);
                }
                1 => {
                    let read = store.get("c").and_then(|v| v.parse::<i64>().ok());
                    prop_assert_eq!(read.unwrap_or(0), expected);
                }
                _ => store.set("other", "noise"),
            }
        }
    }
}

#[test]
fn fencing_tokens_strictly_increase_across_holders() {
    let lock = Redlock::single(RedisLite::new(), "F");
    let mut last = 0;
    for _ in 0..10 {
        let guard = lock.try_acquire().expect("uncontended");
        assert!(guard.fencing > last);
        last = guard.fencing;
        lock.release(&guard);
    }
}

//! Time sources for lease expiry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A source of milliseconds-since-epoch, pluggable so tests can control
/// lease expiry deterministically.
pub trait TimeSource: Send + Sync {
    /// Current time in milliseconds.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemTimeSource;

impl TimeSource for SystemTimeSource {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }
}

/// A manually advanced clock for deterministic TTL tests.
///
/// ```
/// use er_pi_dlock::{ManualTime, TimeSource};
///
/// let t = ManualTime::new(100);
/// assert_eq!(t.now_ms(), 100);
/// t.advance(50);
/// assert_eq!(t.now_ms(), 150);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualTime {
    now: Arc<AtomicU64>,
}

impl ManualTime {
    /// Creates a clock at `start_ms`.
    pub fn new(start_ms: u64) -> Self {
        ManualTime {
            now: Arc::new(AtomicU64::new(start_ms)),
        }
    }

    /// Advances the clock by `delta_ms`.
    pub fn advance(&self, delta_ms: u64) {
        self.now.fetch_add(delta_ms, Ordering::SeqCst);
    }
}

impl TimeSource for ManualTime {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_time_is_monotone_enough() {
        let t = SystemTimeSource;
        let a = t.now_ms();
        let b = t.now_ms();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000, "epoch sanity: after 2020");
    }

    #[test]
    fn manual_time_shares_state_across_clones() {
        let t = ManualTime::new(0);
        let t2 = t.clone();
        t.advance(10);
        assert_eq!(t2.now_ms(), 10);
    }
}

//! Distributed locking for interleaving replay.
//!
//! ER-π "invokes interleaving events via RDL proxies, enforcing the required
//! event order via a distributed lock. The lock uses a Redis-provided
//! distributed locking library" (paper §4.3). This crate rebuilds that
//! stack in-process:
//!
//! * [`RedisLite`] — a thread-safe keyspace with the exact primitives the
//!   Redlock pattern is built on (`SET key value NX PX ttl`, `GET`, `DEL`,
//!   compare-and-delete, `INCR`),
//! * [`Redlock`] — a quorum lock over one or more keyspace instances, with
//!   lease expiry and monotonically increasing *fencing tokens*,
//! * [`OrderSequencer`] — the replay coordinator: one ticket per scheduled
//!   event; each replica thread blocks until the shared turn counter
//!   (guarded by the lock) reaches its ticket, which forces the exact
//!   Lamport order ER-π assigned to the interleaving.
//!
//! ```
//! use std::sync::Arc;
//! use er_pi_dlock::{OrderSequencer, RedisLite};
//!
//! let store = RedisLite::new();
//! let seq = Arc::new(OrderSequencer::new(store, "replay-42"));
//!
//! // Two "replica threads" executing tickets out of spawn order.
//! let s1 = Arc::clone(&seq);
//! let h = std::thread::spawn(move || {
//!     s1.run_in_order(1, || { /* second event */ })
//! });
//! seq.run_in_order(0, || { /* first event */ });
//! h.join().unwrap();
//! assert_eq!(seq.completed(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod mutex;
mod sequencer;
mod store;

pub use clock::{ManualTime, SystemTimeSource, TimeSource};
pub use mutex::{LockGuard, Redlock, RedlockConfig};
pub use sequencer::OrderSequencer;
pub use store::RedisLite;

//! The replay order sequencer.

use std::sync::atomic::{AtomicU64, Ordering};

use er_pi_telemetry::{Telemetry, TrackId, COORDINATOR_TRACK};

use crate::{RedisLite, Redlock, RedlockConfig};

/// Enforces a scheduled total order across concurrently executing replica
/// threads.
///
/// Every event of an interleaving gets a *ticket* — its position (the
/// Lamport timestamp ER-π assigned in §4.2, minus one). The thread
/// responsible for an event calls [`OrderSequencer::run_in_order`] with that
/// ticket; the sequencer blocks it until the shared turn counter (read and
/// advanced under the distributed lock) reaches the ticket, executes the
/// event, and passes the turn on. See the [crate-level
/// example](crate).
#[derive(Debug)]
pub struct OrderSequencer {
    store: RedisLite,
    lock: Redlock,
    turn_key: String,
    completed: AtomicU64,
    telemetry: Telemetry,
    track: TrackId,
}

impl OrderSequencer {
    /// Creates a sequencer named `name` on `store`, starting at ticket 0.
    pub fn new(store: RedisLite, name: &str) -> Self {
        let lock = Redlock::new(
            vec![store.clone()],
            format!("{name}:lock"),
            RedlockConfig {
                ttl_ms: 60_000,
                ..RedlockConfig::default()
            },
        );
        let turn_key = format!("{name}:turn");
        store.set(&turn_key, "0");
        OrderSequencer {
            store,
            lock,
            turn_key,
            completed: AtomicU64::new(0),
            telemetry: Telemetry::disabled(),
            track: COORDINATOR_TRACK,
        }
    }

    /// Attaches a telemetry handle; spans land on `track`.
    ///
    /// The sequencer emits a `dlock:turn-wait` span per ticket covering the
    /// wait from [`OrderSequencer::run_in_order`] entry until the turn
    /// counter reached the ticket, and forwards the handle to the inner
    /// [`Redlock`] so its acquire/hold/contention spans appear on the same
    /// track.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, track: TrackId) -> &mut Self {
        self.lock.set_telemetry(telemetry.clone(), track);
        self.telemetry = telemetry;
        self.track = track;
        self
    }

    /// The ticket currently allowed to run.
    pub fn current_turn(&self) -> u64 {
        self.store
            .get(&self.turn_key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    /// Number of tickets completed through this sequencer handle.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }

    /// Blocks until `ticket`'s turn, runs `f`, and advances the turn.
    ///
    /// # Panics
    ///
    /// Panics if the distributed lock cannot be acquired within its retry
    /// budget (which indicates a deadlocked or crashed peer).
    pub fn run_in_order<R>(&self, ticket: u64, f: impl FnOnce() -> R) -> R {
        let wait_start_us = self.telemetry.now_us();
        let mut spins = 0u64;
        loop {
            let guard = self.lock.acquire().expect("sequencer lock acquisition");
            let turn = self.current_turn();
            if turn == ticket {
                self.telemetry.span_since(
                    self.track,
                    "dlock:turn-wait",
                    wait_start_us,
                    vec![("ticket", ticket.into()), ("spins", spins.into())],
                );
                let out = f();
                self.store.set(&self.turn_key, &(ticket + 1).to_string());
                self.completed.fetch_add(1, Ordering::SeqCst);
                self.lock.release(&guard);
                return out;
            }
            self.lock.release(&guard);
            spins += 1;
            std::thread::yield_now();
        }
    }

    /// Non-blocking variant: runs `f` only if it is already `ticket`'s turn.
    /// Returns `None` when it is not.
    pub fn try_run<R>(&self, ticket: u64, f: impl FnOnce() -> R) -> Option<R> {
        let guard = self.lock.acquire().expect("sequencer lock acquisition");
        let turn = self.current_turn();
        let out = if turn == ticket {
            let r = f();
            self.store.set(&self.turn_key, &(ticket + 1).to_string());
            self.completed.fetch_add(1, Ordering::SeqCst);
            Some(r)
        } else {
            None
        };
        self.lock.release(&guard);
        out
    }

    /// Resets the turn counter to 0 for the next interleaving.
    pub fn reset(&self) {
        self.store.set(&self.turn_key, "0");
        self.completed.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn threads_execute_in_ticket_order_regardless_of_spawn_order() {
        let seq = Arc::new(OrderSequencer::new(RedisLite::new(), "t1"));
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        // Spawn tickets in reverse order to maximize contention.
        let handles: Vec<_> = (0..8u64)
            .rev()
            .map(|ticket| {
                let seq = Arc::clone(&seq);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    seq.run_in_order(ticket, || log.lock().push(ticket));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*log.lock(), (0..8).collect::<Vec<_>>());
        assert_eq!(seq.completed(), 8);
        assert_eq!(seq.current_turn(), 8);
    }

    #[test]
    fn try_run_refuses_out_of_turn_tickets() {
        let seq = OrderSequencer::new(RedisLite::new(), "t2");
        assert_eq!(seq.try_run(1, || "too early"), None);
        assert_eq!(seq.try_run(0, || "on time"), Some("on time"));
        assert_eq!(seq.try_run(0, || "stale"), None);
        assert_eq!(seq.try_run(1, || "next"), Some("next"));
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let seq = OrderSequencer::new(RedisLite::new(), "t3");
        seq.run_in_order(0, || ());
        seq.run_in_order(1, || ());
        seq.reset();
        assert_eq!(seq.current_turn(), 0);
        assert_eq!(seq.completed(), 0);
        seq.run_in_order(0, || ());
        assert_eq!(seq.current_turn(), 1);
    }

    #[test]
    fn sequencers_with_distinct_names_are_independent() {
        let store = RedisLite::new();
        let a = OrderSequencer::new(store.clone(), "a");
        let b = OrderSequencer::new(store, "b");
        a.run_in_order(0, || ());
        assert_eq!(a.current_turn(), 1);
        assert_eq!(b.current_turn(), 0);
    }

    #[test]
    fn telemetry_emits_one_turn_wait_span_per_ticket() {
        use er_pi_telemetry::{ArgValue, EventKind, MemorySink, Telemetry};
        let sink = Arc::new(MemorySink::new());
        let mut seq = OrderSequencer::new(RedisLite::new(), "t5");
        seq.set_telemetry(Telemetry::new(sink.clone()), 7);
        seq.run_in_order(0, || ());
        seq.run_in_order(1, || ());
        let events = sink.events();
        let waits: Vec<_> = events
            .iter()
            .filter(|e| e.name == "dlock:turn-wait")
            .collect();
        assert_eq!(waits.len(), 2);
        assert!(waits.iter().all(|e| e.track == 7));
        let tickets: Vec<u64> = waits
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Span { args, .. } => {
                    args.iter()
                        .find(|(k, _)| *k == "ticket")
                        .map(|(_, v)| match v {
                            ArgValue::UInt(n) => *n,
                            other => panic!("ticket should be a uint, got {other:?}"),
                        })
                }
                _ => None,
            })
            .collect();
        assert_eq!(tickets, vec![0, 1]);
        assert!(
            events.iter().any(|e| e.name == "dlock:acquire"),
            "the inner lock inherits the handle"
        );
    }

    #[test]
    fn interleaved_two_thread_schedule() {
        // Even/odd tickets split across two threads: the merged execution
        // must strictly alternate.
        let seq = Arc::new(OrderSequencer::new(RedisLite::new(), "t4"));
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mk = |tickets: Vec<u64>| {
            let seq = Arc::clone(&seq);
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                for t in tickets {
                    seq.run_in_order(t, || log.lock().push(t));
                }
            })
        };
        let h1 = mk(vec![0, 2, 4, 6]);
        let h2 = mk(vec![1, 3, 5, 7]);
        h1.join().unwrap();
        h2.join().unwrap();
        assert_eq!(*log.lock(), (0..8).collect::<Vec<_>>());
    }
}

//! The Redis-like keyspace.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{SystemTimeSource, TimeSource};

#[derive(Debug, Clone)]
struct Entry {
    value: String,
    /// Absolute expiry, milliseconds since epoch; `None` = no TTL.
    expires_at: Option<u64>,
}

/// A thread-safe, TTL-aware string keyspace exposing the Redis primitives
/// the Redlock pattern needs.
///
/// Clones share the underlying keyspace (they behave like client handles to
/// the same server).
///
/// ```
/// use er_pi_dlock::RedisLite;
///
/// let store = RedisLite::new();
/// assert!(store.set_nx_px("lock", "owner-1", 1000));
/// assert!(!store.set_nx_px("lock", "owner-2", 1000)); // NX: already held
/// assert_eq!(store.get("lock").as_deref(), Some("owner-1"));
/// ```
#[derive(Clone)]
pub struct RedisLite {
    inner: Arc<Mutex<HashMap<String, Entry>>>,
    time: Arc<dyn TimeSource>,
}

impl std::fmt::Debug for RedisLite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RedisLite")
            .field("keys", &self.inner.lock().len())
            .finish()
    }
}

impl RedisLite {
    /// Creates an empty keyspace on the system clock.
    pub fn new() -> Self {
        Self::with_time(Arc::new(SystemTimeSource))
    }

    /// Creates an empty keyspace on an explicit time source.
    pub fn with_time(time: Arc<dyn TimeSource>) -> Self {
        RedisLite {
            inner: Arc::new(Mutex::new(HashMap::new())),
            time,
        }
    }

    fn live<'a>(map: &'a mut HashMap<String, Entry>, key: &str, now: u64) -> Option<&'a mut Entry> {
        let expired = map
            .get(key)
            .is_some_and(|e| e.expires_at.is_some_and(|t| t <= now));
        if expired {
            map.remove(key);
            return None;
        }
        map.get_mut(key)
    }

    /// `SET key value NX PX ttl_ms` — the Redlock acquisition primitive.
    /// Returns `true` if the key was free (or expired) and is now set.
    pub fn set_nx_px(&self, key: &str, value: &str, ttl_ms: u64) -> bool {
        let now = self.time.now_ms();
        let mut map = self.inner.lock();
        if Self::live(&mut map, key, now).is_some() {
            return false;
        }
        map.insert(
            key.to_owned(),
            Entry {
                value: value.to_owned(),
                expires_at: Some(now + ttl_ms),
            },
        );
        true
    }

    /// `SET key value` with no TTL.
    pub fn set(&self, key: &str, value: &str) {
        let mut map = self.inner.lock();
        map.insert(
            key.to_owned(),
            Entry {
                value: value.to_owned(),
                expires_at: None,
            },
        );
    }

    /// `GET key`.
    pub fn get(&self, key: &str) -> Option<String> {
        let now = self.time.now_ms();
        let mut map = self.inner.lock();
        Self::live(&mut map, key, now).map(|e| e.value.clone())
    }

    /// `DEL key`; returns `true` if the key existed.
    pub fn del(&self, key: &str) -> bool {
        let now = self.time.now_ms();
        let mut map = self.inner.lock();
        let live = Self::live(&mut map, key, now).is_some();
        map.remove(key);
        live
    }

    /// The atomic compare-and-delete of the Redlock release script: deletes
    /// `key` only if it currently holds `value`. Returns `true` on delete.
    pub fn del_if_value(&self, key: &str, value: &str) -> bool {
        let now = self.time.now_ms();
        let mut map = self.inner.lock();
        match Self::live(&mut map, key, now) {
            Some(e) if e.value == value => {
                map.remove(key);
                true
            }
            _ => false,
        }
    }

    /// Extends `key`'s TTL to `ttl_ms` from now, only if it holds `value`
    /// (the lease-extension script). Returns `true` on success.
    pub fn pexpire_if_value(&self, key: &str, value: &str, ttl_ms: u64) -> bool {
        let now = self.time.now_ms();
        let mut map = self.inner.lock();
        match Self::live(&mut map, key, now) {
            Some(e) if e.value == value => {
                e.expires_at = Some(now + ttl_ms);
                true
            }
            _ => false,
        }
    }

    /// `INCR key` — atomic counter, initializing absent keys at 0.
    /// Returns the post-increment value.
    pub fn incr(&self, key: &str) -> i64 {
        let now = self.time.now_ms();
        let mut map = self.inner.lock();
        let current = Self::live(&mut map, key, now)
            .and_then(|e| e.value.parse::<i64>().ok())
            .unwrap_or(0);
        let next = current + 1;
        map.insert(
            key.to_owned(),
            Entry {
                value: next.to_string(),
                expires_at: None,
            },
        );
        next
    }

    /// Remaining TTL of `key` in milliseconds: `None` if absent,
    /// `Some(None)` if persistent, `Some(Some(ms))` if expiring.
    pub fn ttl_ms(&self, key: &str) -> Option<Option<u64>> {
        let now = self.time.now_ms();
        let mut map = self.inner.lock();
        Self::live(&mut map, key, now).map(|e| e.expires_at.map(|t| t.saturating_sub(now)))
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        let now = self.time.now_ms();
        let mut map = self.inner.lock();
        map.retain(|_, e| e.expires_at.is_none_or(|t| t > now));
        map.len()
    }

    /// Returns `true` if no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every key.
    pub fn flush(&self) {
        self.inner.lock().clear();
    }
}

impl Default for RedisLite {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualTime;

    fn manual_store() -> (RedisLite, ManualTime) {
        let t = ManualTime::new(1_000);
        let store = RedisLite::with_time(Arc::new(t.clone()));
        (store, t)
    }

    #[test]
    fn set_nx_respects_existing_keys() {
        let (s, _) = manual_store();
        assert!(s.set_nx_px("k", "a", 100));
        assert!(!s.set_nx_px("k", "b", 100));
        assert_eq!(s.get("k").as_deref(), Some("a"));
    }

    #[test]
    fn keys_expire_by_ttl() {
        let (s, t) = manual_store();
        s.set_nx_px("k", "v", 100);
        t.advance(99);
        assert_eq!(s.get("k").as_deref(), Some("v"));
        t.advance(1);
        assert_eq!(s.get("k"), None);
        // An expired key is free for NX again.
        assert!(s.set_nx_px("k", "v2", 100));
    }

    #[test]
    fn del_if_value_is_owner_guarded() {
        let (s, _) = manual_store();
        s.set_nx_px("lock", "owner-a", 100);
        assert!(
            !s.del_if_value("lock", "owner-b"),
            "wrong owner cannot release"
        );
        assert!(s.del_if_value("lock", "owner-a"));
        assert_eq!(s.get("lock"), None);
        assert!(!s.del_if_value("lock", "owner-a"), "already gone");
    }

    #[test]
    fn pexpire_extends_only_for_owner() {
        let (s, t) = manual_store();
        s.set_nx_px("lock", "me", 100);
        t.advance(90);
        assert!(s.pexpire_if_value("lock", "me", 100));
        t.advance(90);
        assert_eq!(s.get("lock").as_deref(), Some("me"), "lease extended");
        assert!(!s.pexpire_if_value("lock", "thief", 100));
    }

    #[test]
    fn incr_is_a_monotone_counter() {
        let (s, _) = manual_store();
        assert_eq!(s.incr("c"), 1);
        assert_eq!(s.incr("c"), 2);
        assert_eq!(s.incr("c"), 3);
        assert_eq!(s.get("c").as_deref(), Some("3"));
    }

    #[test]
    fn ttl_reports_remaining_time() {
        let (s, t) = manual_store();
        assert_eq!(s.ttl_ms("missing"), None);
        s.set("persistent", "v");
        assert_eq!(s.ttl_ms("persistent"), Some(None));
        s.set_nx_px("leased", "v", 500);
        t.advance(100);
        assert_eq!(s.ttl_ms("leased"), Some(Some(400)));
    }

    #[test]
    fn clones_share_the_keyspace() {
        let (s, _) = manual_store();
        let s2 = s.clone();
        s.set("k", "v");
        assert_eq!(s2.get("k").as_deref(), Some("v"));
        s2.flush();
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_incr_loses_nothing() {
        let s = RedisLite::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        s.incr("counter");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.get("counter").as_deref(), Some("800"));
    }
}

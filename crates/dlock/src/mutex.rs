//! The Redlock-style distributed mutex.

use std::collections::HashMap;

use er_pi_telemetry::{Telemetry, TrackId, COORDINATOR_TRACK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::RedisLite;

/// Redlock tuning knobs.
#[derive(Debug, Clone)]
pub struct RedlockConfig {
    /// Lease duration per acquisition, in milliseconds.
    pub ttl_ms: u64,
    /// Maximum acquisition attempts before [`Redlock::acquire`] gives up.
    pub max_retries: u32,
    /// Whether to yield the thread between attempts (disable only in
    /// single-threaded deterministic tests).
    pub yield_between_retries: bool,
}

impl Default for RedlockConfig {
    fn default() -> Self {
        RedlockConfig {
            ttl_ms: 10_000,
            max_retries: 1_000_000,
            yield_between_retries: true,
        }
    }
}

/// Proof of lock ownership.
///
/// Carries the random owner token (for guarded release) and the monotone
/// *fencing token* which downstream resources can use to reject writes from
/// stale, expired holders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockGuard {
    /// Random owner identity stored under the lock key.
    pub token: String,
    /// Monotonically increasing acquisition number.
    pub fencing: i64,
}

/// A distributed mutex over one or more [`RedisLite`] instances, following
/// the Redlock pattern: acquire = `SET key token NX PX ttl` on a majority of
/// instances; release = owner-guarded delete on all instances.
///
/// The paper's deployment uses a single Redis server ("a mutex with a shared
/// key managed by a Redis server", §4.3) — that is simply `quorum = 1 of 1`.
///
/// ```
/// use er_pi_dlock::{RedisLite, Redlock, RedlockConfig};
///
/// let lock = Redlock::single(RedisLite::new(), "replay-lock");
/// let guard = lock.try_acquire().expect("free lock");
/// assert!(lock.try_acquire().is_none(), "held");
/// lock.release(&guard);
/// assert!(lock.try_acquire().is_some());
/// ```
#[derive(Debug)]
pub struct Redlock {
    stores: Vec<RedisLite>,
    key: String,
    fencing_key: String,
    config: RedlockConfig,
    rng: parking_lot::Mutex<StdRng>,
    telemetry: Telemetry,
    track: TrackId,
    /// Acquisition timestamps keyed by owner token, for the `dlock:hold`
    /// span emitted on release. Touched only when telemetry is active.
    holds: parking_lot::Mutex<HashMap<String, u64>>,
}

impl Redlock {
    /// A lock over a single keyspace (the paper's deployment).
    pub fn single(store: RedisLite, key: impl Into<String>) -> Self {
        Self::new(vec![store], key, RedlockConfig::default())
    }

    /// A quorum lock over `stores` (Redlock proper uses five).
    ///
    /// # Panics
    ///
    /// Panics if `stores` is empty.
    pub fn new(stores: Vec<RedisLite>, key: impl Into<String>, config: RedlockConfig) -> Self {
        assert!(!stores.is_empty(), "Redlock needs at least one store");
        let key = key.into();
        Redlock {
            fencing_key: format!("{key}:fencing"),
            key,
            stores,
            config,
            rng: parking_lot::Mutex::new(StdRng::seed_from_u64(0x5eed)),
            telemetry: Telemetry::disabled(),
            track: COORDINATOR_TRACK,
            holds: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// Attaches a telemetry handle; spans land on `track`.
    ///
    /// An active handle makes the lock emit `dlock:acquire` spans (with an
    /// `attempts` count), a `dlock:contention` instant whenever an
    /// acquisition does not succeed on its first attempt, and a
    /// `dlock:hold` span covering acquisition → release. A disabled handle
    /// (the default) costs one branch per operation.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, track: TrackId) -> &mut Self {
        self.telemetry = telemetry;
        self.track = track;
        self
    }

    /// Majority threshold.
    fn quorum(&self) -> usize {
        self.stores.len() / 2 + 1
    }

    /// One acquisition attempt. Returns the guard on success.
    pub fn try_acquire(&self) -> Option<LockGuard> {
        let token: String = {
            let mut rng = self.rng.lock();
            (0..4)
                .map(|_| format!("{:08x}", rng.gen::<u32>()))
                .collect()
        };
        let mut held = 0;
        for store in &self.stores {
            if store.set_nx_px(&self.key, &token, self.config.ttl_ms) {
                held += 1;
            }
        }
        if held >= self.quorum() {
            let fencing = self.stores[0].incr(&self.fencing_key);
            if self.telemetry.is_active() {
                self.holds
                    .lock()
                    .insert(token.clone(), self.telemetry.now_us());
            }
            Some(LockGuard { token, fencing })
        } else {
            // Failed to reach quorum: roll back partial acquisitions.
            for store in &self.stores {
                store.del_if_value(&self.key, &token);
            }
            None
        }
    }

    /// Blocking acquisition with bounded retries.
    ///
    /// Returns `None` if `max_retries` attempts all failed.
    pub fn acquire(&self) -> Option<LockGuard> {
        let start_us = self.telemetry.now_us();
        for attempt in 0..self.config.max_retries {
            if let Some(guard) = self.try_acquire() {
                if self.telemetry.is_active() {
                    if attempt > 0 {
                        self.telemetry.instant(
                            self.track,
                            "dlock:contention",
                            vec![("retries", u64::from(attempt).into())],
                        );
                    }
                    self.telemetry.span_since(
                        self.track,
                        "dlock:acquire",
                        start_us,
                        vec![
                            ("attempts", u64::from(attempt + 1).into()),
                            ("fencing", guard.fencing.into()),
                        ],
                    );
                }
                return Some(guard);
            }
            if self.config.yield_between_retries {
                std::thread::yield_now();
            }
        }
        None
    }

    /// Releases the lock if `guard` still owns it on each instance.
    /// Returns how many instances actually released.
    pub fn release(&self, guard: &LockGuard) -> usize {
        let released = self
            .stores
            .iter()
            .filter(|s| s.del_if_value(&self.key, &guard.token))
            .count();
        if self.telemetry.is_active() {
            if let Some(start_us) = self.holds.lock().remove(&guard.token) {
                self.telemetry.span_since(
                    self.track,
                    "dlock:hold",
                    start_us,
                    vec![
                        ("fencing", guard.fencing.into()),
                        ("released", released.into()),
                    ],
                );
            }
        }
        released
    }

    /// Extends the lease on every instance still owned by `guard`.
    /// Returns `true` if a quorum extended.
    pub fn extend(&self, guard: &LockGuard) -> bool {
        let extended = self
            .stores
            .iter()
            .filter(|s| s.pexpire_if_value(&self.key, &guard.token, self.config.ttl_ms))
            .count();
        extended >= self.quorum()
    }

    /// Returns `true` if any instance currently holds the lock key.
    pub fn is_held(&self) -> bool {
        self.stores.iter().any(|s| s.get(&self.key).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualTime;
    use std::sync::Arc;

    #[test]
    fn try_acquire_is_mutually_exclusive() {
        let lock = Redlock::single(RedisLite::new(), "L");
        let g1 = lock.try_acquire().unwrap();
        assert!(lock.try_acquire().is_none());
        lock.release(&g1);
        let g2 = lock.try_acquire().unwrap();
        assert_ne!(g1.token, g2.token, "fresh token per acquisition");
        assert!(g2.fencing > g1.fencing, "fencing tokens increase");
    }

    #[test]
    fn release_by_non_owner_is_refused() {
        let lock = Redlock::single(RedisLite::new(), "L");
        let real = lock.try_acquire().unwrap();
        let fake = LockGuard {
            token: "forged".into(),
            fencing: 0,
        };
        assert_eq!(lock.release(&fake), 0);
        assert!(lock.is_held());
        assert_eq!(lock.release(&real), 1);
        assert!(!lock.is_held());
    }

    #[test]
    fn lease_expiry_frees_the_lock() {
        let time = ManualTime::new(0);
        let store = RedisLite::with_time(Arc::new(time.clone()));
        let config = RedlockConfig {
            ttl_ms: 100,
            ..RedlockConfig::default()
        };
        let lock = Redlock::new(vec![store], "L", config);
        let stale = lock.try_acquire().unwrap();
        time.advance(150);
        // The lease expired: a new holder can acquire.
        let fresh = lock.try_acquire().expect("expired lease is free");
        assert!(fresh.fencing > stale.fencing);
        // The stale holder's release is a no-op (its key is gone).
        assert_eq!(lock.release(&stale), 0);
        assert!(lock.is_held());
    }

    #[test]
    fn extend_keeps_the_lease_alive() {
        let time = ManualTime::new(0);
        let store = RedisLite::with_time(Arc::new(time.clone()));
        let config = RedlockConfig {
            ttl_ms: 100,
            ..RedlockConfig::default()
        };
        let lock = Redlock::new(vec![store], "L", config);
        let g = lock.try_acquire().unwrap();
        time.advance(90);
        assert!(lock.extend(&g));
        time.advance(90);
        assert!(lock.is_held(), "extension moved the expiry");
    }

    #[test]
    fn quorum_acquisition_over_three_instances() {
        let stores = vec![RedisLite::new(), RedisLite::new(), RedisLite::new()];
        // Pre-poison one instance: quorum (2 of 3) still succeeds.
        stores[2].set_nx_px("L", "someone-else", 60_000);
        let lock = Redlock::new(stores, "L", RedlockConfig::default());
        let g = lock.try_acquire().expect("2-of-3 quorum reached");
        assert_eq!(lock.release(&g), 2);
    }

    #[test]
    fn failed_quorum_rolls_back() {
        let stores = vec![RedisLite::new(), RedisLite::new(), RedisLite::new()];
        stores[1].set_nx_px("L", "other", 60_000);
        stores[2].set_nx_px("L", "other", 60_000);
        let lock = Redlock::new(stores, "L", RedlockConfig::default());
        assert!(lock.try_acquire().is_none());
        // The one instance we *did* grab must have been rolled back.
        let probe = Redlock::single(
            RedisLite::new(), // fresh store: irrelevant
            "probe",
        );
        let _ = probe;
        // Re-attempt still fails identically (no residue blocks retries of
        // the same loser; the winner's keys are untouched).
        assert!(lock.try_acquire().is_none());
    }

    #[test]
    fn telemetry_emits_acquire_and_hold_spans() {
        use er_pi_telemetry::{EventKind, MemorySink, Telemetry};
        let sink = Arc::new(MemorySink::new());
        let mut lock = Redlock::single(RedisLite::new(), "L");
        lock.set_telemetry(Telemetry::new(sink.clone()), 3);
        let g = lock.acquire().unwrap();
        lock.release(&g);
        let events = sink.events();
        let acquire = events
            .iter()
            .find(|e| e.name == "dlock:acquire")
            .expect("acquire span");
        assert_eq!(acquire.track, 3);
        match &acquire.kind {
            EventKind::Span { args, .. } => {
                assert!(args.iter().any(|(k, _)| *k == "attempts"));
            }
            other => panic!("expected span, got {other:?}"),
        }
        assert!(
            events.iter().any(|e| e.name == "dlock:hold"),
            "hold span emitted on release"
        );
        assert!(
            !events.iter().any(|e| e.name == "dlock:contention"),
            "uncontended first-attempt acquire emits no contention instant"
        );
    }

    #[test]
    fn exhausted_acquire_budget_emits_nothing() {
        use er_pi_telemetry::{MemorySink, Telemetry};
        let sink = Arc::new(MemorySink::new());
        let store = RedisLite::new();
        // Hold the key under a foreign token (a second Redlock instance
        // would draw the same seeded token sequence as the waiter).
        assert!(store.set_nx_px("L", "foreign-holder", 60_000));
        let mut waiter = Redlock::new(
            vec![store],
            "L",
            RedlockConfig {
                max_retries: 5,
                yield_between_retries: false,
                ..RedlockConfig::default()
            },
        );
        waiter.set_telemetry(Telemetry::new(sink.clone()), 0);
        assert!(waiter.acquire().is_none(), "budget exhausted");
        assert!(
            sink.events().is_empty(),
            "a failed acquire emits nothing; spans only cover successes"
        );
    }

    #[test]
    fn telemetry_reports_contention_once_the_lease_expires() {
        use er_pi_telemetry::{ArgValue, EventKind, MemorySink, Telemetry};
        use std::sync::atomic::{AtomicU64, Ordering};

        /// A clock that jumps 10ms every read, so the holder's lease
        /// deterministically expires a few retries into the waiter's loop.
        struct TickingTime(AtomicU64);
        impl crate::TimeSource for TickingTime {
            fn now_ms(&self) -> u64 {
                self.0.fetch_add(10, Ordering::SeqCst)
            }
        }

        let store = RedisLite::with_time(Arc::new(TickingTime(AtomicU64::new(0))));
        // Foreign token, 50ms lease: expires a few clock reads in.
        assert!(store.set_nx_px("L", "foreign-holder", 50));

        let sink = Arc::new(MemorySink::new());
        let mut waiter = Redlock::new(
            vec![store],
            "L",
            RedlockConfig {
                ttl_ms: 50,
                max_retries: 1_000,
                yield_between_retries: false,
            },
        );
        waiter.set_telemetry(Telemetry::new(sink.clone()), 0);
        waiter.acquire().expect("lease expiry frees the lock");

        let events = sink.events();
        let contention = events
            .iter()
            .find(|e| e.name == "dlock:contention")
            .expect("retried acquisition flags contention");
        match &contention.kind {
            EventKind::Instant { args } => {
                let retries = args.iter().find(|(k, _)| *k == "retries").unwrap();
                assert!(matches!(&retries.1, ArgValue::UInt(n) if *n > 0));
            }
            other => panic!("expected instant, got {other:?}"),
        }
        assert!(events.iter().any(|e| e.name == "dlock:acquire"));
    }

    #[test]
    fn disabled_telemetry_leaves_no_hold_bookkeeping() {
        let lock = Redlock::single(RedisLite::new(), "L");
        let g = lock.acquire().unwrap();
        assert!(
            lock.holds.lock().is_empty(),
            "inactive handle skips the map"
        );
        lock.release(&g);
    }

    #[test]
    fn contended_threads_never_overlap() {
        let store = RedisLite::new();
        let lock = Arc::new(Redlock::single(store.clone(), "L"));
        let in_critical = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let max_seen = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let in_critical = Arc::clone(&in_critical);
                let max_seen = Arc::clone(&max_seen);
                std::thread::spawn(move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    for _ in 0..50 {
                        let g = lock.acquire().expect("acquire within retry budget");
                        let now = in_critical.fetch_add(1, SeqCst) + 1;
                        max_seen.fetch_max(now, SeqCst);
                        in_critical.fetch_sub(1, SeqCst);
                        lock.release(&g);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            max_seen.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "at most one thread inside the critical section"
        );
    }
}

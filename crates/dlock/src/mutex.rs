//! The Redlock-style distributed mutex.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::RedisLite;

/// Redlock tuning knobs.
#[derive(Debug, Clone)]
pub struct RedlockConfig {
    /// Lease duration per acquisition, in milliseconds.
    pub ttl_ms: u64,
    /// Maximum acquisition attempts before [`Redlock::acquire`] gives up.
    pub max_retries: u32,
    /// Whether to yield the thread between attempts (disable only in
    /// single-threaded deterministic tests).
    pub yield_between_retries: bool,
}

impl Default for RedlockConfig {
    fn default() -> Self {
        RedlockConfig {
            ttl_ms: 10_000,
            max_retries: 1_000_000,
            yield_between_retries: true,
        }
    }
}

/// Proof of lock ownership.
///
/// Carries the random owner token (for guarded release) and the monotone
/// *fencing token* which downstream resources can use to reject writes from
/// stale, expired holders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockGuard {
    /// Random owner identity stored under the lock key.
    pub token: String,
    /// Monotonically increasing acquisition number.
    pub fencing: i64,
}

/// A distributed mutex over one or more [`RedisLite`] instances, following
/// the Redlock pattern: acquire = `SET key token NX PX ttl` on a majority of
/// instances; release = owner-guarded delete on all instances.
///
/// The paper's deployment uses a single Redis server ("a mutex with a shared
/// key managed by a Redis server", §4.3) — that is simply `quorum = 1 of 1`.
///
/// ```
/// use er_pi_dlock::{RedisLite, Redlock, RedlockConfig};
///
/// let lock = Redlock::single(RedisLite::new(), "replay-lock");
/// let guard = lock.try_acquire().expect("free lock");
/// assert!(lock.try_acquire().is_none(), "held");
/// lock.release(&guard);
/// assert!(lock.try_acquire().is_some());
/// ```
#[derive(Debug)]
pub struct Redlock {
    stores: Vec<RedisLite>,
    key: String,
    fencing_key: String,
    config: RedlockConfig,
    rng: parking_lot::Mutex<StdRng>,
}

impl Redlock {
    /// A lock over a single keyspace (the paper's deployment).
    pub fn single(store: RedisLite, key: impl Into<String>) -> Self {
        Self::new(vec![store], key, RedlockConfig::default())
    }

    /// A quorum lock over `stores` (Redlock proper uses five).
    ///
    /// # Panics
    ///
    /// Panics if `stores` is empty.
    pub fn new(stores: Vec<RedisLite>, key: impl Into<String>, config: RedlockConfig) -> Self {
        assert!(!stores.is_empty(), "Redlock needs at least one store");
        let key = key.into();
        Redlock {
            fencing_key: format!("{key}:fencing"),
            key,
            stores,
            config,
            rng: parking_lot::Mutex::new(StdRng::seed_from_u64(0x5eed)),
        }
    }

    /// Majority threshold.
    fn quorum(&self) -> usize {
        self.stores.len() / 2 + 1
    }

    /// One acquisition attempt. Returns the guard on success.
    pub fn try_acquire(&self) -> Option<LockGuard> {
        let token: String = {
            let mut rng = self.rng.lock();
            (0..4)
                .map(|_| format!("{:08x}", rng.gen::<u32>()))
                .collect()
        };
        let mut held = 0;
        for store in &self.stores {
            if store.set_nx_px(&self.key, &token, self.config.ttl_ms) {
                held += 1;
            }
        }
        if held >= self.quorum() {
            let fencing = self.stores[0].incr(&self.fencing_key);
            Some(LockGuard { token, fencing })
        } else {
            // Failed to reach quorum: roll back partial acquisitions.
            for store in &self.stores {
                store.del_if_value(&self.key, &token);
            }
            None
        }
    }

    /// Blocking acquisition with bounded retries.
    ///
    /// Returns `None` if `max_retries` attempts all failed.
    pub fn acquire(&self) -> Option<LockGuard> {
        for _ in 0..self.config.max_retries {
            if let Some(guard) = self.try_acquire() {
                return Some(guard);
            }
            if self.config.yield_between_retries {
                std::thread::yield_now();
            }
        }
        None
    }

    /// Releases the lock if `guard` still owns it on each instance.
    /// Returns how many instances actually released.
    pub fn release(&self, guard: &LockGuard) -> usize {
        self.stores
            .iter()
            .filter(|s| s.del_if_value(&self.key, &guard.token))
            .count()
    }

    /// Extends the lease on every instance still owned by `guard`.
    /// Returns `true` if a quorum extended.
    pub fn extend(&self, guard: &LockGuard) -> bool {
        let extended = self
            .stores
            .iter()
            .filter(|s| s.pexpire_if_value(&self.key, &guard.token, self.config.ttl_ms))
            .count();
        extended >= self.quorum()
    }

    /// Returns `true` if any instance currently holds the lock key.
    pub fn is_held(&self) -> bool {
        self.stores.iter().any(|s| s.get(&self.key).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualTime;
    use std::sync::Arc;

    #[test]
    fn try_acquire_is_mutually_exclusive() {
        let lock = Redlock::single(RedisLite::new(), "L");
        let g1 = lock.try_acquire().unwrap();
        assert!(lock.try_acquire().is_none());
        lock.release(&g1);
        let g2 = lock.try_acquire().unwrap();
        assert_ne!(g1.token, g2.token, "fresh token per acquisition");
        assert!(g2.fencing > g1.fencing, "fencing tokens increase");
    }

    #[test]
    fn release_by_non_owner_is_refused() {
        let lock = Redlock::single(RedisLite::new(), "L");
        let real = lock.try_acquire().unwrap();
        let fake = LockGuard {
            token: "forged".into(),
            fencing: 0,
        };
        assert_eq!(lock.release(&fake), 0);
        assert!(lock.is_held());
        assert_eq!(lock.release(&real), 1);
        assert!(!lock.is_held());
    }

    #[test]
    fn lease_expiry_frees_the_lock() {
        let time = ManualTime::new(0);
        let store = RedisLite::with_time(Arc::new(time.clone()));
        let config = RedlockConfig {
            ttl_ms: 100,
            ..RedlockConfig::default()
        };
        let lock = Redlock::new(vec![store], "L", config);
        let stale = lock.try_acquire().unwrap();
        time.advance(150);
        // The lease expired: a new holder can acquire.
        let fresh = lock.try_acquire().expect("expired lease is free");
        assert!(fresh.fencing > stale.fencing);
        // The stale holder's release is a no-op (its key is gone).
        assert_eq!(lock.release(&stale), 0);
        assert!(lock.is_held());
    }

    #[test]
    fn extend_keeps_the_lease_alive() {
        let time = ManualTime::new(0);
        let store = RedisLite::with_time(Arc::new(time.clone()));
        let config = RedlockConfig {
            ttl_ms: 100,
            ..RedlockConfig::default()
        };
        let lock = Redlock::new(vec![store], "L", config);
        let g = lock.try_acquire().unwrap();
        time.advance(90);
        assert!(lock.extend(&g));
        time.advance(90);
        assert!(lock.is_held(), "extension moved the expiry");
    }

    #[test]
    fn quorum_acquisition_over_three_instances() {
        let stores = vec![RedisLite::new(), RedisLite::new(), RedisLite::new()];
        // Pre-poison one instance: quorum (2 of 3) still succeeds.
        stores[2].set_nx_px("L", "someone-else", 60_000);
        let lock = Redlock::new(stores, "L", RedlockConfig::default());
        let g = lock.try_acquire().expect("2-of-3 quorum reached");
        assert_eq!(lock.release(&g), 2);
    }

    #[test]
    fn failed_quorum_rolls_back() {
        let stores = vec![RedisLite::new(), RedisLite::new(), RedisLite::new()];
        stores[1].set_nx_px("L", "other", 60_000);
        stores[2].set_nx_px("L", "other", 60_000);
        let lock = Redlock::new(stores, "L", RedlockConfig::default());
        assert!(lock.try_acquire().is_none());
        // The one instance we *did* grab must have been rolled back.
        let probe = Redlock::single(
            RedisLite::new(), // fresh store: irrelevant
            "probe",
        );
        let _ = probe;
        // Re-attempt still fails identically (no residue blocks retries of
        // the same loser; the winner's keys are untouched).
        assert!(lock.try_acquire().is_none());
    }

    #[test]
    fn contended_threads_never_overlap() {
        let store = RedisLite::new();
        let lock = Arc::new(Redlock::single(store.clone(), "L"));
        let in_critical = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let max_seen = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let in_critical = Arc::clone(&in_critical);
                let max_seen = Arc::clone(&max_seen);
                std::thread::spawn(move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    for _ in 0..50 {
                        let g = lock.acquire().expect("acquire within retry budget");
                        let now = in_critical.fetch_add(1, SeqCst) + 1;
                        max_seen.fetch_max(now, SeqCst);
                        in_critical.fetch_sub(1, SeqCst);
                        lock.release(&g);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            max_seen.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "at most one thread inside the critical section"
        );
    }
}

//! Virtual replica cluster for the ER-π reproduction.
//!
//! The paper's experimental setup runs three physical replicas (an i7
//! laptop, an i5 laptop, and a Raspberry Pi 3) connected over a real
//! network. This crate substitutes that testbed with a deterministic
//! simulation:
//!
//! * [`Replica`] — one replica holding a CRDT state from `er-pi-rdl`, with
//!   checkpoint/reset support (ER-π snapshots and restores replica state
//!   around every replayed interleaving, paper §4.3),
//! * [`VirtualNetwork`] — per-pair FIFO message queues with configurable
//!   delivery: in-order, seeded reordering, loss, or partitions,
//! * [`HostProfile`] / [`SimClock`] — per-host cost models reproducing the
//!   *time* dimension of Figure 8b without the physical hardware,
//! * [`Cluster`] — the three-replica assembly used throughout the
//!   evaluation.
//!
//! ```
//! use er_pi_model::ReplicaId;
//! use er_pi_rdl::OrSet;
//! use er_pi_replica::Cluster;
//!
//! let mut cluster = Cluster::paper_setup(|id| OrSet::<&str>::new(id));
//! let a = ReplicaId::new(0);
//! let b = ReplicaId::new(1);
//!
//! cluster.update(a, |set| {
//!     set.insert("overturned trash bin");
//! });
//! cluster.sync_send(a, b);
//! cluster.sync_exec(b);
//! assert!(cluster.state(b).contains(&"overturned trash bin"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod host;
mod network;
mod replica;

pub use cluster::Cluster;
pub use host::{HostProfile, SimClock};
pub use network::{DeliveryMode, LinkFault, VirtualNetwork};
pub use replica::Replica;

//! The virtual cluster: replicas + network + simulated time.

use er_pi_model::ReplicaId;
use er_pi_rdl::DeltaSync;

use crate::{DeliveryMode, HostProfile, Replica, SimClock, VirtualNetwork};

/// A virtual cluster of replicas holding op-based CRDT states.
///
/// The cluster wires three concerns together:
///
/// * state — one [`Replica`] per participant,
/// * transport — a [`VirtualNetwork`] of sync messages (operation deltas),
/// * time — a [`SimClock`] charged per the acting replica's
///   [`HostProfile`].
///
/// The two synchronization halves map onto the paper's event taxonomy:
/// [`Cluster::sync_send`] is a "send sync request" event and
/// [`Cluster::sync_exec`] is the matching "execute sync request" event.
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Cluster<T: DeltaSync + Clone> {
    replicas: Vec<Replica<T>>,
    network: VirtualNetwork<Vec<T::Op>>,
    sim: SimClock,
}

impl<T: DeltaSync + Clone> Cluster<T>
where
    T::Op: Clone,
{
    /// Creates a cluster of `n` replicas with default host profiles;
    /// `make` builds each replica's initial state.
    pub fn new(n: usize, make: impl Fn(ReplicaId) -> T) -> Self {
        let replicas = (0..n as u16)
            .map(|i| {
                let id = ReplicaId::new(i);
                Replica::new(id, make(id))
            })
            .collect();
        Cluster {
            replicas,
            network: VirtualNetwork::new(),
            sim: SimClock::new(),
        }
    }

    /// Creates the paper's three-replica setup: i7 laptop, i5 laptop,
    /// Raspberry Pi 3.
    pub fn paper_setup(make: impl Fn(ReplicaId) -> T) -> Self {
        let hosts = HostProfile::paper_trio();
        let replicas = hosts
            .into_iter()
            .enumerate()
            .map(|(i, host)| {
                let id = ReplicaId::new(i as u16);
                Replica::with_host(id, make(id), host)
            })
            .collect();
        Cluster {
            replicas,
            network: VirtualNetwork::new(),
            sim: SimClock::new(),
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Returns `true` if the cluster has no replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// All replica ids.
    pub fn replica_ids(&self) -> Vec<ReplicaId> {
        self.replicas.iter().map(Replica::id).collect()
    }

    /// Immutable access to a replica's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a member of the cluster.
    pub fn state(&self, id: ReplicaId) -> &T {
        self.replicas[id.index()].state()
    }

    /// The replica handle itself.
    pub fn replica(&self, id: ReplicaId) -> &Replica<T> {
        &self.replicas[id.index()]
    }

    /// Applies a local update at `id`, charging the host's op cost.
    pub fn update<R>(&mut self, id: ReplicaId, f: impl FnOnce(&mut T) -> R) -> R {
        let cost = self.replicas[id.index()].host().op_cost_us;
        self.sim.charge_us(cost);
        f(self.replicas[id.index()].state_mut())
    }

    /// Reads from a replica without charging time.
    pub fn read<R>(&self, id: ReplicaId, f: impl FnOnce(&T) -> R) -> R {
        f(self.replicas[id.index()].state())
    }

    /// "Send sync request": computes the operations `to` is missing and puts
    /// them on the wire. Returns the number of operations shipped.
    pub fn sync_send(&mut self, from: ReplicaId, to: ReplicaId) -> usize {
        let receiver_version = self.replicas[to.index()].state().version().clone();
        let ops = self.replicas[from.index()]
            .state()
            .missing_since(&receiver_version);
        let n = ops.len();
        let latency = self.replicas[from.index()].host().net_latency_us;
        self.sim.charge_us(latency);
        self.network.send(from, to, ops);
        n
    }

    /// "Execute sync request": delivers one pending sync message addressed
    /// to `at` (from any peer, scanning in replica order) and applies it.
    /// Returns the number of operations applied, or `None` if no message is
    /// deliverable (a failed op in ER-π terms).
    pub fn sync_exec(&mut self, at: ReplicaId) -> Option<usize> {
        let peers = self.replica_ids();
        for from in peers {
            if from == at {
                continue;
            }
            if let Some(ops) = self.network.deliver(from, at) {
                let cost = self.replicas[at.index()].host().sync_cost_us;
                self.sim.charge_us(cost);
                let state = self.replicas[at.index()].state_mut();
                for op in &ops {
                    state.apply_op(op);
                }
                return Some(ops.len());
            }
        }
        None
    }

    /// "Execute sync request" from a specific sender.
    pub fn sync_exec_from(&mut self, at: ReplicaId, from: ReplicaId) -> Option<usize> {
        let ops = self.network.deliver(from, at)?;
        let cost = self.replicas[at.index()].host().sync_cost_us;
        self.sim.charge_us(cost);
        let state = self.replicas[at.index()].state_mut();
        for op in &ops {
            state.apply_op(op);
        }
        Some(ops.len())
    }

    /// Convenience: send + exec in one step (the fused `sync(ev)` of the
    /// paper's Figure 2).
    pub fn sync_pair(&mut self, from: ReplicaId, to: ReplicaId) -> usize {
        self.sync_send(from, to);
        self.sync_exec_from(to, from).unwrap_or(0)
    }

    /// Direct access to the network (partitions, delivery modes).
    pub fn network_mut(&mut self) -> &mut VirtualNetwork<Vec<T::Op>> {
        &mut self.network
    }

    /// Crash-restarts replica `id`: the in-memory state is discarded and a
    /// fresh one (built by `make`, as at cluster construction) recovers by
    /// replaying the replica's durable op log — everything the crashed
    /// state had observed, i.e. `missing_since(⊥)`. Because [`DeltaSync`]
    /// ops are idempotent and commutative, recovery lands on a state
    /// observably equal to the pre-crash one; what a crash *does* lose is
    /// anything outside the log (and messages the replica had not yet
    /// executed stay on the wire, unaffected).
    ///
    /// Returns the number of operations replayed, charging the host's sync
    /// cost once for the recovery scan.
    pub fn crash_restart(&mut self, id: ReplicaId, make: impl FnOnce(ReplicaId) -> T) -> usize {
        use er_pi_model::VersionVector;
        let log = self.replicas[id.index()]
            .state()
            .missing_since(&VersionVector::default());
        let cost = self.replicas[id.index()].host().sync_cost_us;
        self.sim.charge_us(cost);
        let mut fresh = make(id);
        fresh.apply_ops(log.iter());
        *self.replicas[id.index()].state_mut() = fresh;
        log.len()
    }

    /// Changes the network delivery mode.
    pub fn set_delivery(&mut self, mode: DeliveryMode) {
        self.network.set_mode(mode);
    }

    /// Checkpoints every replica and clears in-flight messages.
    pub fn checkpoint_all(&mut self) {
        for r in &mut self.replicas {
            r.checkpoint();
        }
    }

    /// Resets every replica to its checkpoint, clears the network, and
    /// zeroes the simulated clock — the per-interleaving reset of §4.3.
    pub fn reset_all(&mut self) {
        for r in &mut self.replicas {
            r.reset();
        }
        self.network.reset();
    }

    /// Total simulated time so far.
    pub fn sim(&self) -> SimClock {
        self.sim
    }

    /// Resets the simulated clock.
    pub fn reset_sim(&mut self) {
        self.sim.reset();
    }

    /// Returns `true` if all replicas hold observably identical state,
    /// judged by a projection of each state.
    pub fn converged_by<P: PartialEq>(&self, project: impl Fn(&T) -> P) -> bool {
        let mut views = self.replicas.iter().map(|r| project(r.state()));
        match views.next() {
            None => true,
            Some(first) => views.all(|v| v == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_rdl::OrSet;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn cluster() -> Cluster<OrSet<&'static str>> {
        Cluster::paper_setup(OrSet::new)
    }

    #[test]
    fn paper_setup_has_three_heterogeneous_hosts() {
        let c = cluster();
        assert_eq!(c.len(), 3);
        assert_eq!(c.replica(r(0)).host().name, "ubuntu-laptop-i7");
        assert_eq!(c.replica(r(2)).host().name, "raspbian-rpi3");
    }

    #[test]
    fn update_and_sync_roundtrip() {
        let mut c = cluster();
        c.update(r(0), |s| {
            s.insert("x");
        });
        let shipped = c.sync_send(r(0), r(1));
        assert_eq!(shipped, 1);
        let applied = c.sync_exec(r(1));
        assert_eq!(applied, Some(1));
        assert!(c.state(r(1)).contains(&"x"));
    }

    #[test]
    fn sync_exec_with_empty_queue_is_failed_op() {
        let mut c = cluster();
        assert_eq!(c.sync_exec(r(1)), None);
    }

    #[test]
    fn sim_time_reflects_host_heterogeneity() {
        let mut c = cluster();
        c.update(r(0), |s| {
            s.insert("a");
        });
        let fast = c.sim().elapsed_us();
        c.update(r(2), |s| {
            s.insert("b");
        });
        let slow = c.sim().elapsed_us() - fast;
        assert!(slow > fast, "the Pi replica must charge more time");
    }

    #[test]
    fn checkpoint_reset_isolates_interleavings() {
        let mut c = cluster();
        c.update(r(0), |s| {
            s.insert("base");
        });
        c.checkpoint_all();
        c.update(r(0), |s| {
            s.insert("dirty");
        });
        c.sync_send(r(0), r(1));
        c.reset_all();
        assert!(!c.state(r(0)).contains(&"dirty"));
        assert!(c.state(r(0)).contains(&"base"));
        assert_eq!(c.network_mut().in_flight(), 0);
    }

    #[test]
    fn sync_pair_is_fused_send_exec() {
        let mut c = cluster();
        c.update(r(1), |s| {
            s.insert("p");
        });
        let applied = c.sync_pair(r(1), r(2));
        assert_eq!(applied, 1);
        assert!(c.state(r(2)).contains(&"p"));
    }

    #[test]
    fn converged_by_projection() {
        let mut c = cluster();
        c.update(r(0), |s| {
            s.insert("v");
        });
        assert!(!c.converged_by(|s| s.elements().into_iter().cloned().collect::<Vec<_>>()));
        c.sync_pair(r(0), r(1));
        c.sync_pair(r(0), r(2));
        assert!(c.converged_by(|s| s.elements().into_iter().cloned().collect::<Vec<_>>()));
    }

    #[test]
    fn partitioned_link_blocks_sync() {
        let mut c = cluster();
        c.update(r(0), |s| {
            s.insert("q");
        });
        c.network_mut().partition(r(0), r(1));
        c.sync_send(r(0), r(1));
        assert_eq!(c.sync_exec(r(1)), None, "partition blocks delivery");
        c.network_mut().heal(r(0), r(1));
        assert_eq!(c.sync_exec(r(1)), Some(1));
    }
}

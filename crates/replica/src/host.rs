//! Host performance profiles and the simulated clock.

use serde::{Deserialize, Serialize};

/// A host performance profile: how expensive events are on this machine.
///
/// The presets reproduce the paper's experimental setup (§6): two laptops
/// and a Raspberry Pi 3. Costs are synthetic but ordered realistically —
/// the Pi is roughly an order of magnitude slower per operation — so that
/// simulated replay times have the same *shape* as the paper's Figure 8b.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostProfile {
    /// Human-readable host name.
    pub name: String,
    /// Cost of executing one local RDL update, in microseconds.
    pub op_cost_us: u64,
    /// Cost of executing one synchronization (serialize, apply), in
    /// microseconds, excluding network latency.
    pub sync_cost_us: u64,
    /// One-way network latency to peers, in microseconds.
    pub net_latency_us: u64,
    /// Memory budget, in megabytes (used by the succeed-or-crash
    /// micro-benchmark of Figure 10).
    pub memory_mb: u64,
}

impl HostProfile {
    /// The 32 GB / Intel i7 laptop of the paper's setup.
    pub fn laptop_i7() -> Self {
        HostProfile {
            name: "ubuntu-laptop-i7".into(),
            op_cost_us: 120,
            sync_cost_us: 450,
            net_latency_us: 900,
            memory_mb: 32 * 1024,
        }
    }

    /// The 8 GB / Intel i5 laptop of the paper's setup.
    pub fn laptop_i5() -> Self {
        HostProfile {
            name: "ubuntu-laptop-i5".into(),
            op_cost_us: 210,
            sync_cost_us: 700,
            net_latency_us: 900,
            memory_mb: 8 * 1024,
        }
    }

    /// The 1 GB / ARMv7 Raspberry Pi 3 of the paper's setup.
    pub fn raspberry_pi3() -> Self {
        HostProfile {
            name: "raspbian-rpi3".into(),
            op_cost_us: 1_400,
            sync_cost_us: 4_200,
            net_latency_us: 1_800,
            memory_mb: 1024,
        }
    }

    /// The paper's three-replica host assignment, in replica-id order.
    pub fn paper_trio() -> [HostProfile; 3] {
        [Self::laptop_i7(), Self::laptop_i5(), Self::raspberry_pi3()]
    }
}

impl Default for HostProfile {
    fn default() -> Self {
        Self::laptop_i7()
    }
}

/// Accumulates simulated time.
///
/// ```
/// use er_pi_replica::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.charge_us(1_500);
/// assert_eq!(clock.elapsed_us(), 1_500);
/// assert!((clock.elapsed_secs() - 0.0015).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimClock {
    elapsed_us: u64,
}

impl SimClock {
    /// Creates a clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `us` microseconds of simulated work.
    pub fn charge_us(&mut self, us: u64) {
        self.elapsed_us = self.elapsed_us.saturating_add(us);
    }

    /// Total simulated time, microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.elapsed_us
    }

    /// Total simulated time, seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_us as f64 / 1e6
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.elapsed_us = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_speed() {
        let i7 = HostProfile::laptop_i7();
        let i5 = HostProfile::laptop_i5();
        let pi = HostProfile::raspberry_pi3();
        assert!(i7.op_cost_us < i5.op_cost_us);
        assert!(i5.op_cost_us < pi.op_cost_us);
        assert!(i7.memory_mb > i5.memory_mb);
        assert!(i5.memory_mb > pi.memory_mb);
    }

    #[test]
    fn paper_trio_matches_presets() {
        let trio = HostProfile::paper_trio();
        assert_eq!(trio[0].name, "ubuntu-laptop-i7");
        assert_eq!(trio[2].name, "raspbian-rpi3");
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let mut c = SimClock::new();
        c.charge_us(10);
        c.charge_us(5);
        assert_eq!(c.elapsed_us(), 15);
        c.reset();
        assert_eq!(c.elapsed_us(), 0);
    }

    #[test]
    fn clock_saturates_instead_of_overflowing() {
        let mut c = SimClock::new();
        c.charge_us(u64::MAX);
        c.charge_us(10);
        assert_eq!(c.elapsed_us(), u64::MAX);
    }
}

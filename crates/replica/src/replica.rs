//! A single replica: state + checkpointing + host profile.

use er_pi_model::ReplicaId;

use crate::HostProfile;

/// One replica of the replicated data system.
///
/// Wraps an RDL state with the checkpoint/reset facility ER-π needs: the
/// replay engine snapshots all replicas before executing an interleaving and
/// restores them afterwards, so interleavings cannot contaminate each other
/// (paper §4.3).
///
/// ```
/// use er_pi_model::ReplicaId;
/// use er_pi_rdl::GSet;
/// use er_pi_replica::Replica;
///
/// let mut r = Replica::new(ReplicaId::new(0), GSet::<i32>::new());
/// r.checkpoint();
/// r.state_mut().insert(1);
/// r.reset();
/// assert!(r.state().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Replica<T> {
    id: ReplicaId,
    state: T,
    checkpoint: Option<T>,
    host: HostProfile,
}

impl<T: Clone> Replica<T> {
    /// Creates a replica with the default host profile.
    pub fn new(id: ReplicaId, state: T) -> Self {
        Replica {
            id,
            state,
            checkpoint: None,
            host: HostProfile::default(),
        }
    }

    /// Creates a replica hosted on `host`.
    pub fn with_host(id: ReplicaId, state: T, host: HostProfile) -> Self {
        Replica {
            id,
            state,
            checkpoint: None,
            host,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The host profile this replica runs on.
    pub fn host(&self) -> &HostProfile {
        &self.host
    }

    /// Immutable access to the replicated state.
    pub fn state(&self) -> &T {
        &self.state
    }

    /// Mutable access to the replicated state.
    pub fn state_mut(&mut self) -> &mut T {
        &mut self.state
    }

    /// Snapshots the current state; a later [`Replica::reset`] restores it.
    pub fn checkpoint(&mut self) {
        self.checkpoint = Some(self.state.clone());
    }

    /// Returns `true` if a checkpoint exists.
    pub fn has_checkpoint(&self) -> bool {
        self.checkpoint.is_some()
    }

    /// Restores the last checkpoint (keeping it for further resets).
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint was taken.
    pub fn reset(&mut self) {
        self.state = self
            .checkpoint
            .as_ref()
            .expect("reset requires a prior checkpoint")
            .clone();
    }

    /// Replaces the state outright (used when installing initial states).
    pub fn install(&mut self, state: T) {
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_rdl::GSet;

    #[test]
    fn checkpoint_reset_roundtrip() {
        let mut r = Replica::new(ReplicaId::new(1), GSet::<i32>::new());
        r.state_mut().insert(1);
        r.checkpoint();
        r.state_mut().insert(2);
        assert_eq!(r.state().len(), 2);
        r.reset();
        assert_eq!(r.state().len(), 1);
        assert!(r.state().contains(&1));
        // Reset is repeatable.
        r.state_mut().insert(3);
        r.reset();
        assert_eq!(r.state().len(), 1);
    }

    #[test]
    #[should_panic(expected = "reset requires a prior checkpoint")]
    fn reset_without_checkpoint_panics() {
        let mut r = Replica::new(ReplicaId::new(0), GSet::<i32>::new());
        r.reset();
    }

    #[test]
    fn install_replaces_state() {
        let mut r = Replica::new(ReplicaId::new(0), GSet::<i32>::new());
        let mut s = GSet::new();
        s.insert(9);
        r.install(s);
        assert!(r.state().contains(&9));
    }

    #[test]
    fn host_profile_is_accessible() {
        let r = Replica::with_host(
            ReplicaId::new(2),
            GSet::<i32>::new(),
            HostProfile::raspberry_pi3(),
        );
        assert_eq!(r.host().name, "raspbian-rpi3");
        assert_eq!(r.id(), ReplicaId::new(2));
    }
}

//! The virtual network: per-pair message queues with delivery policies.

use std::collections::{HashMap, HashSet, VecDeque};

use er_pi_model::ReplicaId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the virtual network delivers queued messages.
///
/// Misconception #1 of the paper's §6.2 — "the underlying network ensures
/// causal delivery" — is seeded by switching a link from [`Ordered`] to
/// [`Reordered`]: the network then delivers messages in arbitrary order and
/// only the consistency protocol (not the transport) can restore causality.
///
/// [`Ordered`]: DeliveryMode::Ordered
/// [`Reordered`]: DeliveryMode::Reordered
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DeliveryMode {
    /// FIFO per sender-receiver pair (TCP-like).
    #[default]
    Ordered,
    /// Deliver a *random* queued message each time, seeded for determinism
    /// (UDP-like reordering).
    Reordered {
        /// RNG seed; identical seeds give identical delivery schedules.
        seed: u64,
    },
    /// Drop each message with probability `loss_permille`/1000, seeded.
    Lossy {
        /// Drop probability in permille (0–1000).
        loss_permille: u16,
        /// RNG seed.
        seed: u64,
    },
}

/// A deterministic, per-link scheduled fault — the plan-driven counterpart
/// of the probabilistic [`DeliveryMode`] policies. Scheduled faults are
/// consumed in FIFO order, one per [`VirtualNetwork::deliver`] call on the
/// link, *before* the delivery mode runs, so a fault schedule produces the
/// same behaviour under every mode and every seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Silently discard the head-of-queue message (counted as dropped).
    Drop,
    /// Deliver the head-of-queue message but leave it queued, so the next
    /// delivery on the link receives it again (at-least-once redelivery —
    /// the "exactly-once" misconception seeder).
    Duplicate,
    /// Deliver the message at queue position `n` (clamped to the tail)
    /// instead of the head — a bounded reorder window.
    DeliverNth(usize),
}

/// A virtual network of per-`(from, to)` message queues.
///
/// ```
/// use er_pi_model::ReplicaId;
/// use er_pi_replica::VirtualNetwork;
///
/// let a = ReplicaId::new(0);
/// let b = ReplicaId::new(1);
/// let mut net: VirtualNetwork<&str> = VirtualNetwork::new();
/// net.send(a, b, "hello");
/// assert_eq!(net.deliver(a, b), Some("hello"));
/// assert_eq!(net.deliver(a, b), None);
/// ```
#[derive(Debug, Clone)]
pub struct VirtualNetwork<M> {
    queues: HashMap<(ReplicaId, ReplicaId), VecDeque<M>>,
    mode: DeliveryMode,
    rng: StdRng,
    /// Links currently partitioned, stored as normalized (min, max) pairs:
    /// a partition severs the link in *both* directions, as a real network
    /// split would. The set makes the per-delivery lookup O(1) instead of
    /// the historical linear scan.
    partitions: HashSet<(ReplicaId, ReplicaId)>,
    /// Scheduled per-link fault queues, consumed FIFO by `deliver`.
    link_faults: HashMap<(ReplicaId, ReplicaId), VecDeque<LinkFault>>,
    sent: u64,
    delivered: u64,
    dropped: u64,
}

/// Normalizes a link to its undirected identity.
fn link(a: ReplicaId, b: ReplicaId) -> (ReplicaId, ReplicaId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl<M> VirtualNetwork<M> {
    /// Creates an in-order network.
    pub fn new() -> Self {
        Self::with_mode(DeliveryMode::Ordered)
    }

    /// Creates a network with an explicit delivery mode.
    pub fn with_mode(mode: DeliveryMode) -> Self {
        let seed = match mode {
            DeliveryMode::Reordered { seed } | DeliveryMode::Lossy { seed, .. } => seed,
            DeliveryMode::Ordered => 0,
        };
        VirtualNetwork {
            queues: HashMap::new(),
            mode,
            rng: StdRng::seed_from_u64(seed),
            partitions: HashSet::new(),
            link_faults: HashMap::new(),
            sent: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// The current delivery mode.
    pub fn mode(&self) -> DeliveryMode {
        self.mode
    }

    /// Changes the delivery mode mid-run (the RNG is reseeded).
    pub fn set_mode(&mut self, mode: DeliveryMode) {
        if let DeliveryMode::Reordered { seed } | DeliveryMode::Lossy { seed, .. } = mode {
            self.rng = StdRng::seed_from_u64(seed);
        }
        self.mode = mode;
    }

    /// Cuts the link between `from` and `to` in both directions (messages
    /// queue up, nothing delivers). The endpoint order is irrelevant: the
    /// link is stored under its normalized undirected identity.
    pub fn partition(&mut self, from: ReplicaId, to: ReplicaId) {
        self.partitions.insert(link(from, to));
    }

    /// Heals the link between `from` and `to` (either endpoint order).
    pub fn heal(&mut self, from: ReplicaId, to: ReplicaId) {
        self.partitions.remove(&link(from, to));
    }

    /// Returns `true` if the link between `from` and `to` is cut (the
    /// lookup is symmetric, like the partition itself).
    pub fn is_partitioned(&self, from: ReplicaId, to: ReplicaId) -> bool {
        self.partitions.contains(&link(from, to))
    }

    /// Schedules a deterministic [`LinkFault`] on the `from → to` link.
    /// Faults queue per link and are consumed FIFO, one per delivery
    /// attempt, before the [`DeliveryMode`] policy runs. Unlike partitions,
    /// fault schedules are directional — they model what happens to the
    /// messages of one sender.
    pub fn schedule_fault(&mut self, from: ReplicaId, to: ReplicaId, fault: LinkFault) {
        self.link_faults
            .entry((from, to))
            .or_default()
            .push_back(fault);
    }

    /// Number of scheduled faults not yet consumed on the `from → to` link.
    pub fn pending_faults(&self, from: ReplicaId, to: ReplicaId) -> usize {
        self.link_faults.get(&(from, to)).map_or(0, VecDeque::len)
    }

    /// Enqueues a message on the `from → to` link.
    pub fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: M) {
        self.sent += 1;
        self.queues.entry((from, to)).or_default().push_back(msg);
    }

    /// Delivers one message from the `from → to` link according to the
    /// scheduled faults and the delivery mode. Returns `None` if the queue
    /// is empty or the link is partitioned (in which case no scheduled
    /// fault is consumed).
    ///
    /// A scheduled [`LinkFault`] — if one is pending and a message is
    /// queued — overrides the mode for this delivery: `Drop` discards the
    /// head and falls through to the next message (consuming further
    /// scheduled faults in turn), `Duplicate` delivers the head without
    /// dequeuing it, `DeliverNth(n)` delivers the message at position `n`
    /// (clamped to the tail).
    pub fn deliver(&mut self, from: ReplicaId, to: ReplicaId) -> Option<M>
    where
        M: Clone,
    {
        if self.is_partitioned(from, to) {
            return None;
        }
        loop {
            if self.queues.get(&(from, to)).is_some_and(|q| !q.is_empty()) {
                if let Some(fault) = self
                    .link_faults
                    .get_mut(&(from, to))
                    .and_then(VecDeque::pop_front)
                {
                    let queue = self.queues.get_mut(&(from, to)).expect("checked above");
                    match fault {
                        LinkFault::Drop => {
                            queue.pop_front();
                            self.dropped += 1;
                            continue;
                        }
                        LinkFault::Duplicate => {
                            let msg = queue.front().cloned();
                            self.delivered += 1;
                            return msg;
                        }
                        LinkFault::DeliverNth(n) => {
                            let idx = n.min(queue.len() - 1);
                            let msg = queue.remove(idx);
                            self.delivered += 1;
                            return msg;
                        }
                    }
                }
            }
            let queue = self.queues.get_mut(&(from, to))?;
            if queue.is_empty() {
                return None;
            }
            let msg = match self.mode {
                DeliveryMode::Ordered => queue.pop_front(),
                DeliveryMode::Reordered { .. } => {
                    let idx = self.rng.gen_range(0..queue.len());
                    queue.remove(idx)
                }
                DeliveryMode::Lossy { loss_permille, .. } => {
                    let msg = queue.pop_front();
                    if self.rng.gen_range(0u16..1000) < loss_permille {
                        self.dropped += 1;
                        continue; // message lost: try the next one
                    }
                    msg
                }
            };
            if msg.is_some() {
                self.delivered += 1;
            }
            return msg;
        }
    }

    /// Number of messages queued on the `from → to` link.
    pub fn queued(&self, from: ReplicaId, to: ReplicaId) -> usize {
        self.queues.get(&(from, to)).map_or(0, VecDeque::len)
    }

    /// Total messages in flight across all links.
    pub fn in_flight(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Statistics: `(sent, delivered, dropped)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.sent, self.delivered, self.dropped)
    }

    /// Clears every queue, scheduled fault, and counter (used between
    /// replayed interleavings). Partitions persist — they are topology, not
    /// traffic.
    pub fn reset(&mut self) {
        self.queues.clear();
        self.link_faults.clear();
        self.sent = 0;
        self.delivered = 0;
        self.dropped = 0;
    }
}

impl<M> Default for VirtualNetwork<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn ordered_delivery_is_fifo() {
        let mut net = VirtualNetwork::new();
        net.send(r(0), r(1), 1);
        net.send(r(0), r(1), 2);
        net.send(r(0), r(1), 3);
        assert_eq!(net.deliver(r(0), r(1)), Some(1));
        assert_eq!(net.deliver(r(0), r(1)), Some(2));
        assert_eq!(net.deliver(r(0), r(1)), Some(3));
        assert_eq!(net.deliver(r(0), r(1)), None);
    }

    #[test]
    fn queues_are_per_pair() {
        let mut net = VirtualNetwork::new();
        net.send(r(0), r(1), "ab");
        net.send(r(1), r(0), "ba");
        assert_eq!(net.queued(r(0), r(1)), 1);
        assert_eq!(net.queued(r(1), r(0)), 1);
        assert_eq!(net.deliver(r(1), r(0)), Some("ba"));
        assert_eq!(net.in_flight(), 1);
    }

    #[test]
    fn reordered_delivery_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net = VirtualNetwork::with_mode(DeliveryMode::Reordered { seed });
            for i in 0..10 {
                net.send(r(0), r(1), i);
            }
            let mut out = Vec::new();
            while let Some(m) = net.deliver(r(0), r(1)) {
                out.push(m);
            }
            out
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(
            run(42),
            (0..10).collect::<Vec<_>>(),
            "seed 42 actually reorders"
        );
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let mut net = VirtualNetwork::new();
        net.send(r(0), r(1), 7);
        net.partition(r(0), r(1));
        assert!(net.is_partitioned(r(0), r(1)));
        assert_eq!(net.deliver(r(0), r(1)), None);
        net.heal(r(0), r(1));
        assert_eq!(net.deliver(r(0), r(1)), Some(7));
    }

    #[test]
    fn lossy_mode_drops_some_messages() {
        let mut net = VirtualNetwork::with_mode(DeliveryMode::Lossy {
            loss_permille: 500,
            seed: 7,
        });
        for i in 0..100 {
            net.send(r(0), r(1), i);
        }
        let mut received = 0;
        while net.deliver(r(0), r(1)).is_some() {
            received += 1;
        }
        let (sent, delivered, dropped) = net.stats();
        assert_eq!(sent, 100);
        assert_eq!(delivered as usize, received);
        assert!(dropped > 10, "about half should drop, got {dropped}");
        assert_eq!(delivered + dropped, 100);
    }

    #[test]
    fn reset_clears_queues_and_stats() {
        let mut net = VirtualNetwork::new();
        net.send(r(0), r(1), 1);
        net.schedule_fault(r(0), r(1), LinkFault::Drop);
        net.reset();
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.stats(), (0, 0, 0));
        assert_eq!(net.pending_faults(r(0), r(1)), 0);
    }

    #[test]
    fn partition_lookup_is_symmetric() {
        // Regression for the directed Vec-scan representation: cutting
        // (a, b) must sever the link both ways, and healing with the
        // endpoints swapped must restore it.
        let mut net = VirtualNetwork::new();
        net.send(r(0), r(1), 1);
        net.send(r(1), r(0), 2);
        net.partition(r(0), r(1));
        assert!(net.is_partitioned(r(0), r(1)));
        assert!(net.is_partitioned(r(1), r(0)), "lookup must be symmetric");
        assert_eq!(net.deliver(r(0), r(1)), None);
        assert_eq!(
            net.deliver(r(1), r(0)),
            None,
            "reverse direction is cut too"
        );
        net.heal(r(1), r(0));
        assert!(!net.is_partitioned(r(0), r(1)));
        assert_eq!(net.deliver(r(0), r(1)), Some(1));
        assert_eq!(net.deliver(r(1), r(0)), Some(2));
        // Re-partitioning the same link twice is idempotent.
        net.partition(r(0), r(1));
        net.partition(r(1), r(0));
        net.heal(r(0), r(1));
        assert!(!net.is_partitioned(r(1), r(0)));
    }

    #[test]
    fn scheduled_drop_discards_the_head() {
        let mut net = VirtualNetwork::new();
        net.send(r(0), r(1), 1);
        net.send(r(0), r(1), 2);
        net.schedule_fault(r(0), r(1), LinkFault::Drop);
        assert_eq!(net.deliver(r(0), r(1)), Some(2), "1 was dropped");
        let (sent, delivered, dropped) = net.stats();
        assert_eq!((sent, delivered, dropped), (2, 1, 1));
    }

    #[test]
    fn scheduled_duplicate_redelivers_the_same_message() {
        let mut net = VirtualNetwork::new();
        net.send(r(0), r(1), 7);
        net.send(r(0), r(1), 8);
        net.schedule_fault(r(0), r(1), LinkFault::Duplicate);
        assert_eq!(net.deliver(r(0), r(1)), Some(7));
        assert_eq!(net.deliver(r(0), r(1)), Some(7), "redelivered");
        assert_eq!(net.deliver(r(0), r(1)), Some(8));
    }

    #[test]
    fn scheduled_deliver_nth_reorders_within_the_window() {
        let mut net = VirtualNetwork::new();
        for i in 0..3 {
            net.send(r(0), r(1), i);
        }
        net.schedule_fault(r(0), r(1), LinkFault::DeliverNth(2));
        net.schedule_fault(r(0), r(1), LinkFault::DeliverNth(99)); // clamped
        assert_eq!(net.deliver(r(0), r(1)), Some(2));
        assert_eq!(net.deliver(r(0), r(1)), Some(1), "99 clamps to the tail");
        assert_eq!(net.deliver(r(0), r(1)), Some(0));
    }

    #[test]
    fn faults_wait_for_messages_and_override_the_mode() {
        // A fault scheduled on an empty queue is not consumed by the empty
        // delivery attempt; once traffic arrives it fires, regardless of a
        // lossy mode's RNG (determinism: scheduled faults preempt draws).
        let mut net = VirtualNetwork::with_mode(DeliveryMode::Lossy {
            loss_permille: 1000,
            seed: 3,
        });
        net.schedule_fault(r(0), r(1), LinkFault::Duplicate);
        assert_eq!(net.deliver(r(0), r(1)), None);
        assert_eq!(net.pending_faults(r(0), r(1)), 1);
        net.send(r(0), r(1), 5);
        assert_eq!(net.deliver(r(0), r(1)), Some(5), "fault preempts the mode");
        assert_eq!(net.pending_faults(r(0), r(1)), 0);
    }
}

//! Property tests for the virtual cluster: convergence is independent of
//! the network's delivery schedule.

use proptest::prelude::*;

use er_pi_model::ReplicaId;
use er_pi_rdl::OrSet;
use er_pi_replica::{Cluster, DeliveryMode};

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

fn elements(set: &OrSet<i64>) -> Vec<i64> {
    set.elements().into_iter().copied().collect()
}

fn run_schedule(mode: DeliveryMode, inserts: &[(u16, i64)]) -> Vec<Vec<i64>> {
    let mut cluster: Cluster<OrSet<i64>> = Cluster::paper_setup(OrSet::new);
    cluster.set_delivery(mode);
    for &(rep, v) in inserts {
        let rep = rep % 3;
        cluster.update(r(rep), |s| {
            s.insert(v);
        });
        cluster.sync_send(r(rep), r((rep + 1) % 3));
    }
    // Drain all queues, then run anti-entropy rounds to a fixpoint.
    for _ in 0..4 {
        for to in 0..3u16 {
            while cluster.sync_exec(r(to)).is_some() {}
        }
        for from in 0..3u16 {
            for to in 0..3u16 {
                if from != to {
                    cluster.sync_pair(r(from), r(to));
                }
            }
        }
    }
    (0..3u16).map(|i| elements(cluster.state(r(i)))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ordered and reordered delivery end in the same converged state.
    #[test]
    fn delivery_mode_does_not_change_the_fixpoint(
        inserts in proptest::collection::vec((0u16..3, 0i64..100), 1..12),
        seed in 0u64..1000,
    ) {
        let ordered = run_schedule(DeliveryMode::Ordered, &inserts);
        let reordered = run_schedule(DeliveryMode::Reordered { seed }, &inserts);
        prop_assert_eq!(&ordered, &reordered);
        // And all replicas agree with each other.
        prop_assert_eq!(&ordered[0], &ordered[1]);
        prop_assert_eq!(&ordered[1], &ordered[2]);
    }

    /// Checkpoint/reset is a true snapshot: any activity after the
    /// checkpoint is fully undone.
    #[test]
    fn reset_restores_the_checkpoint_exactly(
        before in proptest::collection::vec((0u16..3, 0i64..50), 0..6),
        after in proptest::collection::vec((0u16..3, 50i64..100), 1..6),
    ) {
        let mut cluster: Cluster<OrSet<i64>> = Cluster::paper_setup(OrSet::new);
        for &(rep, v) in &before {
            cluster.update(r(rep % 3), |s| {
                s.insert(v);
            });
        }
        cluster.checkpoint_all();
        let snapshot: Vec<Vec<i64>> =
            (0..3u16).map(|i| elements(cluster.state(r(i)))).collect();
        for &(rep, v) in &after {
            cluster.update(r(rep % 3), |s| {
                s.insert(v);
            });
            cluster.sync_send(r(rep % 3), r((rep + 1) % 3));
        }
        cluster.reset_all();
        let restored: Vec<Vec<i64>> =
            (0..3u16).map(|i| elements(cluster.state(r(i)))).collect();
        prop_assert_eq!(restored, snapshot);
        prop_assert_eq!(cluster.network_mut().in_flight(), 0);
    }

    /// Simulated time only ever grows, and grows more on slower hosts.
    #[test]
    fn sim_time_is_monotone(ops in proptest::collection::vec(0u16..3, 1..20)) {
        let mut cluster: Cluster<OrSet<i64>> = Cluster::paper_setup(OrSet::new);
        let mut last = 0;
        for (i, rep) in ops.iter().enumerate() {
            cluster.update(r(rep % 3), |s| {
                s.insert(i as i64);
            });
            let now = cluster.sim().elapsed_us();
            prop_assert!(now > last);
            last = now;
        }
    }
}

//! Grow-only and two-phase sets.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::StateCrdt;

/// A grow-only set: elements can only be added.
///
/// ```
/// use er_pi_rdl::{GSet, StateCrdt};
///
/// let mut a = GSet::new();
/// let mut b = GSet::new();
/// a.insert(1);
/// b.insert(2);
/// a.merge(&b);
/// assert!(a.contains(&1) && a.contains(&2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GSet<T: Ord> {
    items: BTreeSet<T>,
}

impl<T: Ord> GSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        GSet {
            items: BTreeSet::new(),
        }
    }

    /// Adds `item`; returns `true` if it was not already present.
    pub fn insert(&mut self, item: T) -> bool {
        self.items.insert(item)
    }

    /// Membership test.
    pub fn contains(&self, item: &T) -> bool {
        self.items.contains(item)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the elements in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

impl<T: Ord + Clone> StateCrdt for GSet<T> {
    fn merge(&mut self, other: &Self) {
        for item in &other.items {
            if !self.items.contains(item) {
                self.items.insert(item.clone());
            }
        }
    }
}

impl<T: Ord> FromIterator<T> for GSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        GSet {
            items: iter.into_iter().collect(),
        }
    }
}

/// A two-phase set: removal is permanent (tombstoned); a removed element can
/// never be re-added.
///
/// This is the simplest replicated set with removal — and its "remove wins
/// forever" semantics is one of the behaviours application developers
/// commonly misunderstand (misconception #5 territory: the library is
/// consistent, but the application may not expect permanence).
///
/// ```
/// use er_pi_rdl::{StateCrdt, TwoPhaseSet};
///
/// let mut s = TwoPhaseSet::new();
/// s.insert("x");
/// assert!(s.remove(&"x"));
/// assert!(!s.insert("x")); // re-add is refused: the tombstone wins
/// assert!(!s.contains(&"x"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TwoPhaseSet<T: Ord> {
    added: BTreeSet<T>,
    removed: BTreeSet<T>,
}

impl<T: Ord + Clone> TwoPhaseSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        TwoPhaseSet {
            added: BTreeSet::new(),
            removed: BTreeSet::new(),
        }
    }

    /// Adds `item`. Returns `false` (a failed op) if the element is
    /// tombstoned or already present.
    pub fn insert(&mut self, item: T) -> bool {
        if self.removed.contains(&item) || self.added.contains(&item) {
            return false;
        }
        self.added.insert(item)
    }

    /// Removes `item`. Returns `false` (a failed op) if the element is not
    /// currently visible.
    pub fn remove(&mut self, item: &T) -> bool {
        if self.contains(item) {
            self.removed.insert(item.clone());
            true
        } else {
            false
        }
    }

    /// Membership test (added and not tombstoned).
    pub fn contains(&self, item: &T) -> bool {
        self.added.contains(item) && !self.removed.contains(item)
    }

    /// Number of visible elements.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Returns `true` if no element is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over visible elements in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.added
            .iter()
            .filter(move |i| !self.removed.contains(*i))
    }
}

impl<T: Ord + Clone> StateCrdt for TwoPhaseSet<T> {
    fn merge(&mut self, other: &Self) {
        for i in &other.added {
            if !self.added.contains(i) {
                self.added.insert(i.clone());
            }
        }
        for i in &other.removed {
            if !self.removed.contains(i) {
                self.removed.insert(i.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gset_insert_and_contains() {
        let mut s = GSet::new();
        assert!(s.insert(1));
        assert!(!s.insert(1)); // duplicate add is a failed op
        assert!(s.contains(&1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn gset_merge_is_union() {
        let a: GSet<i32> = [1, 2].into_iter().collect();
        let b: GSet<i32> = [2, 3].into_iter().collect();
        let m = a.merged(&b);
        assert_eq!(m.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn twop_remove_then_readd_fails() {
        let mut s = TwoPhaseSet::new();
        assert!(s.insert(5));
        assert!(s.remove(&5));
        assert!(!s.insert(5));
        assert!(s.is_empty());
    }

    #[test]
    fn twop_remove_of_absent_fails() {
        let mut s: TwoPhaseSet<i32> = TwoPhaseSet::new();
        assert!(!s.remove(&1));
    }

    #[test]
    fn twop_concurrent_add_remove_remove_wins() {
        let mut a = TwoPhaseSet::new();
        a.insert("x");
        let mut b = a.clone();
        // Replica B removes while replica A keeps it.
        b.remove(&"x");
        a.merge(&b);
        assert!(!a.contains(&"x"));
        // Convergent from the other direction too.
        let mut a2 = TwoPhaseSet::new();
        a2.insert("x");
        let mut b2 = a2.clone();
        b2.remove(&"x");
        b2.merge(&a2);
        assert!(!b2.contains(&"x"));
    }

    #[test]
    fn twop_merge_laws_hold_on_sample() {
        let mut a = TwoPhaseSet::new();
        a.insert(1);
        a.insert(2);
        a.remove(&2);
        let mut b = TwoPhaseSet::new();
        b.insert(2);
        b.insert(3);
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.merged(&ab), ab);
        // 2 was tombstoned by a: stays dead after merge.
        assert!(!ab.contains(&2));
        assert_eq!(ab.len(), 2);
    }
}

//! Grow-only and increment/decrement counters.

use std::collections::BTreeMap;
use std::fmt;

use er_pi_model::{CanonicalEncode, ReplicaId};
use serde::{Deserialize, Serialize};

use crate::StateCrdt;

/// A grow-only counter: one monotone count per replica; value = sum.
///
/// ```
/// use er_pi_model::{CanonicalEncode, ReplicaId};
/// use er_pi_rdl::{GCounter, StateCrdt};
///
/// let mut a = GCounter::new(ReplicaId::new(0));
/// let mut b = GCounter::new(ReplicaId::new(1));
/// a.increment(3);
/// b.increment(2);
/// a.merge(&b);
/// assert_eq!(a.value(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GCounter {
    replica: ReplicaId,
    counts: BTreeMap<ReplicaId, u64>,
}

impl GCounter {
    /// Creates a zeroed counter owned by `replica`.
    pub fn new(replica: ReplicaId) -> Self {
        GCounter {
            replica,
            counts: BTreeMap::new(),
        }
    }

    /// The replica this handle mutates on behalf of.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Adds `by` to the local replica's count.
    pub fn increment(&mut self, by: u64) {
        *self.counts.entry(self.replica).or_insert(0) += by;
    }

    /// The converged value: the sum of all per-replica counts.
    pub fn value(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The contribution of one specific replica.
    pub fn contribution(&self, replica: ReplicaId) -> u64 {
        self.counts.get(&replica).copied().unwrap_or(0)
    }
}

impl StateCrdt for GCounter {
    fn merge(&mut self, other: &Self) {
        for (&r, &c) in &other.counts {
            let mine = self.counts.entry(r).or_insert(0);
            if c > *mine {
                *mine = c;
            }
        }
    }
}

impl fmt::Display for GCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GCounter({})", self.value())
    }
}

/// A positive-negative counter: two [`GCounter`]s, one for increments and one
/// for decrements.
///
/// ```
/// use er_pi_model::{CanonicalEncode, ReplicaId};
/// use er_pi_rdl::{PnCounter, StateCrdt};
///
/// let mut a = PnCounter::new(ReplicaId::new(0));
/// a.increment(10);
/// a.decrement(4);
/// assert_eq!(a.value(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PnCounter {
    inc: GCounter,
    dec: GCounter,
}

impl PnCounter {
    /// Creates a zeroed counter owned by `replica`.
    pub fn new(replica: ReplicaId) -> Self {
        PnCounter {
            inc: GCounter::new(replica),
            dec: GCounter::new(replica),
        }
    }

    /// The replica this handle mutates on behalf of.
    pub fn replica(&self) -> ReplicaId {
        self.inc.replica()
    }

    /// Adds `by`.
    pub fn increment(&mut self, by: u64) {
        self.inc.increment(by);
    }

    /// Subtracts `by`.
    pub fn decrement(&mut self, by: u64) {
        self.dec.increment(by);
    }

    /// The converged value (may be negative).
    pub fn value(&self) -> i64 {
        self.inc.value() as i64 - self.dec.value() as i64
    }
}

impl StateCrdt for PnCounter {
    fn merge(&mut self, other: &Self) {
        self.inc.merge(&other.inc);
        self.dec.merge(&other.dec);
    }
}

impl CanonicalEncode for GCounter {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.replica.encode_canonical(out);
        self.counts.encode_canonical(out);
    }
}

impl CanonicalEncode for PnCounter {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.inc.encode_canonical(out);
        self.dec.encode_canonical(out);
    }
}

impl fmt::Display for PnCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PnCounter({})", self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn gcounter_counts_per_replica() {
        let mut c = GCounter::new(r(0));
        c.increment(1);
        c.increment(2);
        assert_eq!(c.value(), 3);
        assert_eq!(c.contribution(r(0)), 3);
        assert_eq!(c.contribution(r(1)), 0);
    }

    #[test]
    fn gcounter_merge_takes_max_not_sum() {
        let mut a = GCounter::new(r(0));
        a.increment(5);
        let snapshot = a.clone();
        a.increment(1);
        // Re-merging an older snapshot must not double count.
        a.merge(&snapshot);
        assert_eq!(a.value(), 6);
    }

    #[test]
    fn gcounter_concurrent_increments_sum() {
        let mut a = GCounter::new(r(0));
        let mut b = GCounter::new(r(1));
        a.increment(2);
        b.increment(7);
        let merged = a.merged(&b);
        assert_eq!(merged.value(), 9);
    }

    #[test]
    fn pncounter_can_go_negative() {
        let mut c = PnCounter::new(r(0));
        c.decrement(4);
        assert_eq!(c.value(), -4);
        c.increment(1);
        assert_eq!(c.value(), -3);
    }

    #[test]
    fn pncounter_merge_converges_from_both_sides() {
        let mut a = PnCounter::new(r(0));
        let mut b = PnCounter::new(r(1));
        a.increment(10);
        b.decrement(3);
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        // The owner-replica handle differs; the replicated state must not.
        assert_eq!(ab.value(), ba.value());
        assert_eq!(ab.value(), 7);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(GCounter::new(r(0)).to_string(), "GCounter(0)");
        assert_eq!(PnCounter::new(r(0)).to_string(), "PnCounter(0)");
    }
}

//! The two replication interfaces the substrate exposes.

use er_pi_model::VersionVector;

/// A state-based (convergent) replicated data type.
///
/// `merge` must be a join-semilattice join: commutative, associative, and
/// idempotent. The property-test suite of this crate checks all three laws
/// for every implementation.
pub trait StateCrdt: Clone {
    /// Joins `other`'s state into `self`.
    fn merge(&mut self, other: &Self);

    /// Returns the join of `self` and `other` without mutating either.
    #[must_use]
    fn merged(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.merge(other);
        out
    }
}

/// An operation-based replicated data type that can compute sync deltas.
///
/// The replica simulator uses this to build sync messages: the sender calls
/// [`DeltaSync::missing_since`] with the receiver's version vector and ships
/// the returned operations; the receiver applies them with
/// [`DeltaSync::apply_op`]. `apply_op` must be idempotent (redelivery safe)
/// and commutative across concurrent operations.
pub trait DeltaSync {
    /// The operation type shipped between replicas.
    type Op: Clone;

    /// Operations this replica has observed that `since` has not.
    fn missing_since(&self, since: &VersionVector) -> Vec<Self::Op>;

    /// Applies one (possibly remote, possibly redelivered) operation.
    fn apply_op(&mut self, op: &Self::Op);

    /// The version vector summarizing every operation observed so far.
    fn version(&self) -> &VersionVector;

    /// Applies every operation in `ops` in order.
    fn apply_ops<'a, I>(&mut self, ops: I)
    where
        I: IntoIterator<Item = &'a Self::Op>,
        Self::Op: 'a,
    {
        for op in ops {
            self.apply_op(op);
        }
    }

    /// Synchronizes from `other` by applying everything `self` is missing.
    fn sync_from(&mut self, other: &Self)
    where
        Self: Sized,
    {
        let missing = other.missing_since(self.version());
        self.apply_ops(missing.iter());
    }
}

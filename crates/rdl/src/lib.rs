//! The replicated data library (RDL) substrate of the ER-π reproduction.
//!
//! The paper evaluates ER-π against five third-party RDLs (Roshi, OrbitDB,
//! ReplicaDB, Yorkie, and the `crdts` Java collection). Since those libraries
//! are written in Go, JavaScript, and Java, this crate rebuilds the data
//! models they share — a complete, standalone CRDT library:
//!
//! | Family | Types |
//! |---|---|
//! | counters | [`GCounter`], [`PnCounter`] |
//! | registers | [`LwwRegister`], [`MvRegister`] |
//! | sets | [`GSet`], [`TwoPhaseSet`], [`OrSet`], [`LwwElementSet`] |
//! | sequences | [`Rga`] (replicated growable array with move support) |
//! | maps | [`LwwMap`], [`OrMap`] |
//! | stores | [`LwwTimeSeries`] (Roshi-style), [`MerkleLog`] (OrbitDB-style), [`JsonDoc`] (Yorkie-style) |
//!
//! All state-based types implement [`StateCrdt`] (join-semilattice `merge`);
//! the op-based types additionally implement [`DeltaSync`], producing the
//! operation deltas that the replica simulator ships as sync messages.
//!
//! # Convergence guarantees
//!
//! Every `merge` in this crate is commutative, associative, and idempotent,
//! and every op-based `effect` is commutative for concurrent operations and
//! idempotent under redelivery. These are the *library-level* guarantees the
//! paper's motivating example leans on — and, crucially, they do **not**
//! imply application-level correctness, which is exactly the gap ER-π's
//! integration testing targets.
//!
//! ```
//! use er_pi_model::ReplicaId;
//! use er_pi_rdl::{OrSet, StateCrdt};
//!
//! let mut a = OrSet::new(ReplicaId::new(0));
//! let mut b = OrSet::new(ReplicaId::new(1));
//! a.insert("overturned trash bin");
//! b.insert("pothole");
//!
//! // Bidirectional merge converges both replicas.
//! let snapshot = b.clone();
//! b.merge(&a);
//! a.merge(&snapshot);
//! assert_eq!(a.elements(), b.elements());
//! assert_eq!(a.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commute;
mod counter;
mod doc;
mod hash;
mod lwwset;
mod map;
mod oplog;
mod orset;
mod register;
mod rga;
mod set;
mod timeseries;
mod traits;

pub use commute::{conflict_reasons, ConflictReason, CrdtType, OpKind, OpProfile};
pub use counter::{GCounter, PnCounter};
pub use doc::{DocError, DocOp, JsonDoc, JsonValue, PathSegment};
pub use hash::{fnv1a128, fnv1a64};
pub use lwwset::{Bias, LwwElementSet};
pub use map::{LwwMap, OrMap};
pub use oplog::{LogEntry, LogSortOrder, MerkleHash, MerkleLog, MerkleLogOp};
pub use orset::{OrSet, OrSetOp};
pub use register::{LwwRegister, MvRegister};
pub use rga::{ElementId, Rga, RgaOp};
pub use set::{GSet, TwoPhaseSet};
pub use timeseries::{LwwTimeSeries, ScoredMember, TieBreak, TsOp};
pub use traits::{DeltaSync, StateCrdt};

//! Last-write-wins element set.

use std::collections::BTreeMap;

use er_pi_model::LamportTimestamp;
use serde::{Deserialize, Serialize};

use crate::StateCrdt;

/// Tie-breaking policy when an element's latest add and remove carry the
/// *same* timestamp.
///
/// Roshi documents add-bias ("inserts win over deletes at the same
/// timestamp"); the Roshi-2 bug (issue #11) is precisely about what happens
/// when this tie policy is not honoured consistently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Bias {
    /// At equal timestamps, the element is present.
    #[default]
    Add,
    /// At equal timestamps, the element is absent.
    Remove,
}

/// A last-write-wins element set: per element, the highest-timestamped
/// add/remove wins.
///
/// ```
/// use er_pi_model::{LamportTimestamp, ReplicaId};
/// use er_pi_rdl::{Bias, LwwElementSet, StateCrdt};
///
/// let r0 = ReplicaId::new(0);
/// let mut s = LwwElementSet::new(Bias::Add);
/// s.add("x", LamportTimestamp::new(1, r0));
/// s.remove("x", LamportTimestamp::new(2, r0));
/// assert!(!s.contains(&"x"));
/// s.add("x", LamportTimestamp::new(3, r0));
/// assert!(s.contains(&"x"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LwwElementSet<T: Ord> {
    bias: Bias,
    adds: BTreeMap<T, LamportTimestamp>,
    removes: BTreeMap<T, LamportTimestamp>,
}

impl<T: Ord + Clone> LwwElementSet<T> {
    /// Creates an empty set with the given tie-breaking `bias`.
    pub fn new(bias: Bias) -> Self {
        LwwElementSet {
            bias,
            adds: BTreeMap::new(),
            removes: BTreeMap::new(),
        }
    }

    /// The configured tie-breaking policy.
    pub fn bias(&self) -> Bias {
        self.bias
    }

    /// Records an add of `element` at `ts`. Keeps the max add timestamp.
    pub fn add(&mut self, element: T, ts: LamportTimestamp) {
        let slot = self.adds.entry(element).or_insert(ts);
        if ts > *slot {
            *slot = ts;
        }
    }

    /// Records a remove of `element` at `ts`. Keeps the max remove timestamp.
    pub fn remove(&mut self, element: T, ts: LamportTimestamp) {
        let slot = self.removes.entry(element).or_insert(ts);
        if ts > *slot {
            *slot = ts;
        }
    }

    /// Membership under LWW + bias semantics.
    pub fn contains(&self, element: &T) -> bool {
        match (self.adds.get(element), self.removes.get(element)) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(a), Some(r)) => {
                if a.time == r.time {
                    // Same logical instant: the configured bias decides.
                    self.bias == Bias::Add
                } else {
                    a > r
                }
            }
        }
    }

    /// Returns `true` if `element` has a remove newer than (or tying with,
    /// under remove bias) its add — i.e. the element reads as deleted.
    ///
    /// This is the `deleted` response field of Roshi's read API whose
    /// miscomputation is the Roshi-1 bug (issue #18).
    pub fn is_deleted(&self, element: &T) -> bool {
        self.adds.contains_key(element) && !self.contains(element)
    }

    /// Visible elements in sorted order.
    pub fn elements(&self) -> Vec<&T> {
        self.adds.keys().filter(|e| self.contains(e)).collect()
    }

    /// Number of visible elements.
    pub fn len(&self) -> usize {
        self.elements().len()
    }

    /// Returns `true` if no element is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The latest add timestamp recorded for `element`.
    pub fn add_timestamp(&self, element: &T) -> Option<LamportTimestamp> {
        self.adds.get(element).copied()
    }

    /// The latest remove timestamp recorded for `element`.
    pub fn remove_timestamp(&self, element: &T) -> Option<LamportTimestamp> {
        self.removes.get(element).copied()
    }
}

impl<T: Ord + Clone> StateCrdt for LwwElementSet<T> {
    fn merge(&mut self, other: &Self) {
        for (e, &ts) in &other.adds {
            self.add(e.clone(), ts);
        }
        for (e, &ts) in &other.removes {
            self.remove(e.clone(), ts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::ReplicaId;

    fn ts(t: u64, rep: u16) -> LamportTimestamp {
        LamportTimestamp::new(t, ReplicaId::new(rep))
    }

    #[test]
    fn add_then_remove_then_add() {
        let mut s = LwwElementSet::new(Bias::Add);
        s.add(1, ts(1, 0));
        assert!(s.contains(&1));
        s.remove(1, ts(2, 0));
        assert!(!s.contains(&1));
        assert!(s.is_deleted(&1));
        s.add(1, ts(3, 0));
        assert!(s.contains(&1));
        assert!(!s.is_deleted(&1));
    }

    #[test]
    fn stale_operations_lose() {
        let mut s = LwwElementSet::new(Bias::Add);
        s.add(1, ts(5, 0));
        s.remove(1, ts(3, 0)); // older remove: loses
        assert!(s.contains(&1));
    }

    #[test]
    fn equal_time_add_bias() {
        let mut s = LwwElementSet::new(Bias::Add);
        s.add("x", ts(4, 0));
        s.remove("x", ts(4, 1));
        assert!(s.contains(&"x"), "add bias keeps the element at a tie");
    }

    #[test]
    fn equal_time_remove_bias() {
        let mut s = LwwElementSet::new(Bias::Remove);
        s.add("x", ts(4, 0));
        s.remove("x", ts(4, 1));
        assert!(!s.contains(&"x"), "remove bias drops the element at a tie");
    }

    #[test]
    fn merge_converges_and_is_idempotent() {
        let mut a = LwwElementSet::new(Bias::Add);
        let mut b = LwwElementSet::new(Bias::Add);
        a.add(1, ts(1, 0));
        a.remove(2, ts(2, 0));
        b.add(2, ts(1, 1));
        b.add(3, ts(2, 1));
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.merged(&ab), ab);
        assert!(ab.contains(&1));
        assert!(!ab.contains(&2)); // remove at t=2 beats add at t=1
        assert!(ab.contains(&3));
    }

    #[test]
    fn never_added_is_not_deleted() {
        let s: LwwElementSet<i32> = LwwElementSet::new(Bias::Add);
        assert!(!s.is_deleted(&9));
        assert!(!s.contains(&9));
        assert!(s.is_empty());
    }

    #[test]
    fn timestamps_are_observable() {
        let mut s = LwwElementSet::new(Bias::Add);
        s.add(1, ts(1, 0));
        s.add(1, ts(7, 1));
        s.add(1, ts(3, 0)); // older: ignored
        assert_eq!(s.add_timestamp(&1), Some(ts(7, 1)));
        assert_eq!(s.remove_timestamp(&1), None);
    }
}

//! Roshi-style LWW time-series event store.
//!
//! [Roshi](https://github.com/soundcloud/roshi) keeps, per key, a set of
//! `(member, score)` pairs under last-write-wins semantics: an insert or
//! delete only takes effect if its score (timestamp) is higher than the
//! member's current score. Reads return members sorted by descending score
//! and expose a `deleted` flag per member — the field the Roshi-1 bug
//! (issue #18) miscomputes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::StateCrdt;
use er_pi_model::CanonicalEncode;

/// What happens when an insert and a delete of the same member carry the
/// *same* score.
///
/// Roshi's documented semantics is "inserts win"; the Roshi-2 bug
/// (issue #11, "CRDT semantics violated if same timestamp?") arises when an
/// implementation leaves the tie unspecified, making the outcome depend on
/// arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TieBreak {
    /// Inserts win ties (Roshi's documented behaviour).
    #[default]
    InsertWins,
    /// Deletes win ties.
    DeleteWins,
    /// Ties resolve to whichever operation was *applied last* — the buggy,
    /// order-dependent behaviour ER-π flushes out.
    LastApplied,
}

/// One `(member, score)` pair returned by [`LwwTimeSeries::select`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ScoredMember {
    /// Score (timestamp) of the winning write.
    pub score: u64,
    /// Member payload.
    pub member: String,
}

/// One replicated operation of a [`LwwTimeSeries`], as shipped in sync
/// messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TsOp {
    /// Insert `member` into `key`'s set at `score`.
    Insert {
        /// Target key.
        key: String,
        /// Member payload.
        member: String,
        /// Write score.
        score: u64,
    },
    /// Delete `member` from `key`'s set at `score`.
    Delete {
        /// Target key.
        key: String,
        /// Member payload.
        member: String,
        /// Write score.
        score: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum OpKind {
    Insert,
    Delete,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Cell {
    score: u64,
    kind: OpKind,
}

/// A Roshi-style LWW time-series store: keys map to LWW sets of scored
/// members.
///
/// ```
/// use er_pi_rdl::{LwwTimeSeries, TieBreak};
///
/// let mut ts = LwwTimeSeries::new(TieBreak::InsertWins);
/// ts.insert("stream", "event-1", 100);
/// ts.insert("stream", "event-2", 200);
/// ts.delete("stream", "event-1", 300);
/// let page = ts.select("stream", 0, 10);
/// assert_eq!(page.len(), 1);
/// assert_eq!(page[0].member, "event-2");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LwwTimeSeries {
    tie: TieBreak,
    keys: BTreeMap<String, BTreeMap<String, Cell>>,
    /// Full op history, for delta-style shipping by the subjects.
    log: Vec<TsOp>,
}

impl LwwTimeSeries {
    /// Creates an empty store with tie policy `tie`.
    pub fn new(tie: TieBreak) -> Self {
        LwwTimeSeries {
            tie,
            keys: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// The configured tie policy.
    pub fn tie_break(&self) -> TieBreak {
        self.tie
    }

    fn apply_cell(&mut self, key: &str, member: &str, incoming: Cell) -> bool {
        let set = self.keys.entry(key.to_owned()).or_default();
        match set.get_mut(member) {
            None => {
                set.insert(member.to_owned(), incoming);
                true
            }
            Some(current) => {
                let wins = match incoming.score.cmp(&current.score) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Equal => match self.tie {
                        TieBreak::InsertWins => {
                            incoming.kind == OpKind::Insert && current.kind == OpKind::Delete
                        }
                        TieBreak::DeleteWins => {
                            incoming.kind == OpKind::Delete && current.kind == OpKind::Insert
                        }
                        // Order-dependent: the op applied last always wins
                        // the tie. Divergence waiting to happen.
                        TieBreak::LastApplied => incoming.kind != current.kind,
                    },
                };
                if wins {
                    *current = incoming;
                }
                wins
            }
        }
    }

    /// Inserts `member` under `key` at `score`. Returns `true` if the write
    /// won LWW resolution.
    pub fn insert(&mut self, key: &str, member: &str, score: u64) -> bool {
        self.log.push(TsOp::Insert {
            key: key.to_owned(),
            member: member.to_owned(),
            score,
        });
        self.apply_cell(
            key,
            member,
            Cell {
                score,
                kind: OpKind::Insert,
            },
        )
    }

    /// Deletes `member` under `key` at `score`. Returns `true` if the write
    /// won LWW resolution.
    pub fn delete(&mut self, key: &str, member: &str, score: u64) -> bool {
        self.log.push(TsOp::Delete {
            key: key.to_owned(),
            member: member.to_owned(),
            score,
        });
        self.apply_cell(
            key,
            member,
            Cell {
                score,
                kind: OpKind::Delete,
            },
        )
    }

    /// Applies one remote operation (same resolution as local writes).
    pub fn apply(&mut self, op: &TsOp) {
        match op {
            TsOp::Insert { key, member, score } => {
                self.insert(key, member, *score);
            }
            TsOp::Delete { key, member, score } => {
                self.delete(key, member, *score);
            }
        }
    }

    /// The full operation log (for subjects that ship deltas themselves).
    pub fn log(&self) -> &[TsOp] {
        &self.log
    }

    /// Reads a page of `key`'s visible members, sorted by descending score
    /// (ties by member), skipping `offset` and returning at most `limit`.
    pub fn select(&self, key: &str, offset: usize, limit: usize) -> Vec<ScoredMember> {
        let Some(set) = self.keys.get(key) else {
            return Vec::new();
        };
        let mut members: Vec<ScoredMember> = set
            .iter()
            .filter(|(_, cell)| cell.kind == OpKind::Insert)
            .map(|(m, cell)| ScoredMember {
                score: cell.score,
                member: m.clone(),
            })
            .collect();
        members.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.member.cmp(&b.member)));
        members.into_iter().skip(offset).take(limit).collect()
    }

    /// Returns whether `member` currently reads as deleted under `key`
    /// (`None` if the member was never written). This is the response field
    /// of the Roshi-1 bug.
    pub fn is_deleted(&self, key: &str, member: &str) -> Option<bool> {
        self.keys
            .get(key)
            .and_then(|set| set.get(member))
            .map(|cell| cell.kind == OpKind::Delete)
    }

    /// Number of visible members under `key`.
    pub fn key_len(&self, key: &str) -> usize {
        self.keys
            .get(key)
            .map(|set| set.values().filter(|c| c.kind == OpKind::Insert).count())
            .unwrap_or(0)
    }

    /// All keys with any recorded member (visible or tombstoned).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.keys.keys().map(String::as_str)
    }
}

impl Default for LwwTimeSeries {
    fn default() -> Self {
        Self::new(TieBreak::InsertWins)
    }
}

impl CanonicalEncode for ScoredMember {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.score.encode_canonical(out);
        self.member.encode_canonical(out);
    }
}

impl CanonicalEncode for TsOp {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        let (tag, key, member, score) = match self {
            TsOp::Insert { key, member, score } => (0u8, key, member, score),
            TsOp::Delete { key, member, score } => (1u8, key, member, score),
        };
        out.push(tag);
        key.encode_canonical(out);
        member.encode_canonical(out);
        score.encode_canonical(out);
    }
}

impl CanonicalEncode for LwwTimeSeries {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        // Everything a future op can observe: the tie policy steers LWW
        // resolution, the per-member cells steer insert/delete acceptance
        // and reads, and the op log is what sync ships (and what
        // `assemble`-style history reads iterate).
        out.push(match self.tie {
            TieBreak::InsertWins => 0,
            TieBreak::DeleteWins => 1,
            TieBreak::LastApplied => 2,
        });
        (self.keys.len() as u64).encode_canonical(out);
        for (key, set) in &self.keys {
            key.encode_canonical(out);
            (set.len() as u64).encode_canonical(out);
            for (member, cell) in set {
                member.encode_canonical(out);
                cell.score.encode_canonical(out);
                out.push(match cell.kind {
                    OpKind::Insert => 0,
                    OpKind::Delete => 1,
                });
            }
        }
        self.log.encode_canonical(out);
    }
}

impl StateCrdt for LwwTimeSeries {
    fn merge(&mut self, other: &Self) {
        for (key, set) in &other.keys {
            for (member, &cell) in set {
                self.apply_cell(key, member, cell);
            }
        }
        for op in &other.log {
            if !self.log.contains(op) {
                self.log.push(op.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_select_roundtrip() {
        let mut ts = LwwTimeSeries::default();
        ts.insert("k", "a", 10);
        ts.insert("k", "b", 20);
        let page = ts.select("k", 0, 10);
        assert_eq!(page.len(), 2);
        assert_eq!(page[0].member, "b", "descending score order");
        assert_eq!(ts.key_len("k"), 2);
    }

    #[test]
    fn select_pagination() {
        let mut ts = LwwTimeSeries::default();
        for i in 0..5u64 {
            ts.insert("k", &format!("m{i}"), i * 10);
        }
        let page = ts.select("k", 1, 2);
        assert_eq!(page.len(), 2);
        assert_eq!(page[0].member, "m3");
        assert_eq!(page[1].member, "m2");
        assert!(ts.select("missing", 0, 10).is_empty());
    }

    #[test]
    fn stale_delete_loses() {
        let mut ts = LwwTimeSeries::default();
        ts.insert("k", "a", 100);
        assert!(!ts.delete("k", "a", 50));
        assert_eq!(ts.key_len("k"), 1);
        assert_eq!(ts.is_deleted("k", "a"), Some(false));
    }

    #[test]
    fn newer_delete_wins_and_flags_deleted() {
        let mut ts = LwwTimeSeries::default();
        ts.insert("k", "a", 100);
        assert!(ts.delete("k", "a", 200));
        assert_eq!(ts.key_len("k"), 0);
        assert_eq!(ts.is_deleted("k", "a"), Some(true));
        assert_eq!(ts.is_deleted("k", "never"), None);
    }

    #[test]
    fn insert_wins_tie_is_order_independent() {
        let mut x = LwwTimeSeries::new(TieBreak::InsertWins);
        x.insert("k", "a", 5);
        x.delete("k", "a", 5);
        let mut y = LwwTimeSeries::new(TieBreak::InsertWins);
        y.delete("k", "a", 5);
        y.insert("k", "a", 5);
        assert_eq!(x.is_deleted("k", "a"), Some(false));
        assert_eq!(y.is_deleted("k", "a"), Some(false));
    }

    #[test]
    fn last_applied_tie_is_order_dependent() {
        // The Roshi-2 defect distilled: same ops, different orders,
        // different outcomes.
        let mut x = LwwTimeSeries::new(TieBreak::LastApplied);
        x.insert("k", "a", 5);
        x.delete("k", "a", 5);
        let mut y = LwwTimeSeries::new(TieBreak::LastApplied);
        y.delete("k", "a", 5);
        y.insert("k", "a", 5);
        assert_ne!(x.is_deleted("k", "a"), y.is_deleted("k", "a"));
    }

    #[test]
    fn merge_with_insert_wins_converges() {
        let mut a = LwwTimeSeries::new(TieBreak::InsertWins);
        let mut b = LwwTimeSeries::new(TieBreak::InsertWins);
        a.insert("k", "x", 10);
        a.delete("k", "y", 30);
        b.insert("k", "y", 20);
        b.insert("k", "z", 5);
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        assert_eq!(ab.select("k", 0, 10), ba.select("k", 0, 10));
        assert_eq!(ab.key_len("k"), 2); // y is tombstoned at 30
    }

    #[test]
    fn apply_matches_local_ops() {
        let mut a = LwwTimeSeries::default();
        a.insert("k", "m", 7);
        let mut b = LwwTimeSeries::default();
        for op in a.log().to_vec() {
            b.apply(&op);
        }
        assert_eq!(b.select("k", 0, 10), a.select("k", 0, 10));
    }

    #[test]
    fn keys_lists_all_touched_keys() {
        let mut ts = LwwTimeSeries::default();
        ts.insert("k1", "a", 1);
        ts.delete("k2", "b", 1);
        let keys: Vec<&str> = ts.keys().collect();
        assert_eq!(keys, vec!["k1", "k2"]);
    }
}

//! Deterministic 64-bit hashing for content-addressed structures.

/// FNV-1a over a byte slice.
///
/// Used by the [`MerkleLog`](crate::MerkleLog) for content addressing.
/// `std::hash::DefaultHasher` is randomly seeded per process, which would
/// make Merkle hashes non-reproducible across runs; FNV-1a is stable.
///
/// ```
/// use er_pi_rdl::fnv1a64;
///
/// assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
/// assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over a byte slice, 128-bit variant.
///
/// The state-hash subsumption layer keys its explored-set on digests of
/// canonical replica-state encodings; at campaign scale (10⁴–10⁶ entries) a
/// 64-bit digest has a non-negligible birthday-collision probability, while
/// 128 bits puts it far below any practical campaign length. Same stability
/// rationale as [`fnv1a64`]: reproducible across processes and platforms.
///
/// ```
/// use er_pi_rdl::{fnv1a128, fnv1a64};
///
/// assert_eq!(fnv1a128(b"abc"), fnv1a128(b"abc"));
/// assert_ne!(fnv1a128(b"abc"), fnv1a128(b"abd"));
/// // Not a widening of the 64-bit variant: an independent permutation.
/// assert_ne!(fnv1a128(b"abc") as u64, fnv1a64(b"abc"));
/// ```
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a reference values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn deterministic_across_calls() {
        let x = fnv1a64(b"er-pi");
        assert_eq!(x, fnv1a64(b"er-pi"));
    }

    #[test]
    fn sensitive_to_order() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn known_vectors_128() {
        // FNV-1a 128 reference values (offset basis and the standard
        // test-vector "a" from the FNV reference code).
        assert_eq!(fnv1a128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        assert_eq!(fnv1a128(b"a"), 0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964);
    }

    #[test]
    fn fnv128_is_deterministic_and_order_sensitive() {
        assert_eq!(fnv1a128(b"er-pi"), fnv1a128(b"er-pi"));
        assert_ne!(fnv1a128(b"ab"), fnv1a128(b"ba"));
        assert_ne!(fnv1a128(b"ab"), fnv1a128(b"abc"));
    }
}

//! Deterministic 64-bit hashing for content-addressed structures.

/// FNV-1a over a byte slice.
///
/// Used by the [`MerkleLog`](crate::MerkleLog) for content addressing.
/// `std::hash::DefaultHasher` is randomly seeded per process, which would
/// make Merkle hashes non-reproducible across runs; FNV-1a is stable.
///
/// ```
/// use er_pi_rdl::fnv1a64;
///
/// assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
/// assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a reference values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn deterministic_across_calls() {
        let x = fnv1a64(b"er-pi");
        assert_eq!(x, fnv1a64(b"er-pi"));
    }

    #[test]
    fn sensitive_to_order() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}

//! Replicated maps: last-write-wins and nested observed-remove maps.

use std::collections::BTreeMap;

use er_pi_model::{LamportTimestamp, ReplicaId, VersionVector};
use serde::{Deserialize, Serialize};

use crate::{LwwRegister, StateCrdt};

/// A last-write-wins map: per key, the highest-timestamped write (or
/// tombstone) wins.
///
/// ```
/// use er_pi_model::{LamportTimestamp, ReplicaId};
/// use er_pi_rdl::{LwwMap, StateCrdt};
///
/// let r0 = ReplicaId::new(0);
/// let mut m = LwwMap::new();
/// m.put("k", 1, LamportTimestamp::new(1, r0));
/// m.remove(&"k", LamportTimestamp::new(2, r0));
/// assert_eq!(m.get(&"k"), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LwwMap<K: Ord, V> {
    entries: BTreeMap<K, LwwRegister<Option<V>>>,
}

impl<K: Ord + Clone, V: Clone> LwwMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        LwwMap {
            entries: BTreeMap::new(),
        }
    }

    /// Writes `value` under `key` at `ts`. Returns `true` if the write won.
    pub fn put(&mut self, key: K, value: V, ts: LamportTimestamp) -> bool {
        match self.entries.get_mut(&key) {
            Some(reg) => reg.set(Some(value), ts),
            None => {
                self.entries.insert(key, LwwRegister::new(Some(value), ts));
                true
            }
        }
    }

    /// Tombstones `key` at `ts`. Returns `true` if the tombstone won.
    pub fn remove(&mut self, key: &K, ts: LamportTimestamp) -> bool {
        match self.entries.get_mut(key) {
            Some(reg) => reg.set(None, ts),
            None => {
                self.entries.insert(key.clone(), LwwRegister::new(None, ts));
                true
            }
        }
    }

    /// The visible value under `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries.get(key).and_then(|reg| reg.get().as_ref())
    }

    /// The write timestamp currently winning for `key` (even if tombstoned).
    pub fn timestamp(&self, key: &K) -> Option<LamportTimestamp> {
        self.entries.get(key).map(LwwRegister::timestamp)
    }

    /// Number of visible keys.
    pub fn len(&self) -> usize {
        self.entries.values().filter(|r| r.get().is_some()).count()
    }

    /// Returns `true` if no key is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over visible `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries
            .iter()
            .filter_map(|(k, reg)| reg.get().as_ref().map(|v| (k, v)))
    }

    /// Visible keys in key order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }
}

impl<K: Ord + Clone, V: Clone> Default for LwwMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> StateCrdt for LwwMap<K, V> {
    fn merge(&mut self, other: &Self) {
        for (k, reg) in &other.entries {
            match self.entries.get_mut(k) {
                Some(mine) => mine.merge(reg),
                None => {
                    self.entries.insert(k.clone(), reg.clone());
                }
            }
        }
    }
}

/// An observed-remove map of nested CRDTs: values are themselves state-based
/// CRDTs, merged key-wise; a remove only deletes the state it observed
/// (concurrent nested updates resurrect the entry — add-wins).
///
/// ```
/// use er_pi_model::ReplicaId;
/// use er_pi_rdl::{GCounter, OrMap, StateCrdt};
///
/// let mut m: OrMap<&str, GCounter> = OrMap::new(ReplicaId::new(0));
/// m.update_with("hits", || GCounter::new(ReplicaId::new(0)), |c| c.increment(2));
/// assert_eq!(m.get(&"hits").unwrap().value(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrMap<K: Ord, V> {
    replica: ReplicaId,
    entries: BTreeMap<K, V>,
    /// Per-key causal context: versions observed at removal time.
    removed: BTreeMap<K, VersionVector>,
    /// Per-key update version.
    versions: BTreeMap<K, VersionVector>,
}

impl<K: Ord + Clone, V: StateCrdt + PartialEq> OrMap<K, V> {
    /// Creates an empty map owned by `replica`.
    pub fn new(replica: ReplicaId) -> Self {
        OrMap {
            replica,
            entries: BTreeMap::new(),
            removed: BTreeMap::new(),
            versions: BTreeMap::new(),
        }
    }

    /// The replica this handle mutates on behalf of.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Mutates (creating with `init` if absent) the nested CRDT under `key`.
    pub fn update_with(&mut self, key: K, init: impl FnOnce() -> V, f: impl FnOnce(&mut V)) {
        let v = self.entries.entry(key.clone()).or_insert_with(init);
        f(v);
        self.versions
            .entry(key)
            .or_default()
            .increment(self.replica);
    }

    /// Mutates (creating if absent) the nested CRDT under `key`.
    pub fn update(&mut self, key: K, f: impl FnOnce(&mut V))
    where
        V: Default,
    {
        self.update_with(key, V::default, f);
    }

    /// Removes `key`, observing its current causal version. Returns `false`
    /// (a failed op) if the key is absent.
    pub fn remove(&mut self, key: &K) -> bool {
        if !self.contains(key) {
            return false;
        }
        let observed = self.versions.get(key).cloned().unwrap_or_default();
        self.entries.remove(key);
        let slot = self.removed.entry(key.clone()).or_default();
        slot.merge(&observed);
        true
    }

    /// The nested CRDT under `key`, if visible.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries.get(key)
    }

    /// Membership test.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of visible keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no key is visible.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over visible `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter()
    }
}

impl<K: Ord + Clone, V: StateCrdt + PartialEq> StateCrdt for OrMap<K, V> {
    fn merge(&mut self, other: &Self) {
        // Merge removal contexts first.
        for (k, rv) in &other.removed {
            self.removed.entry(k.clone()).or_default().merge(rv);
        }
        // Merge entries: an entry survives if its version is not dominated
        // by the (combined) removal context.
        let mut keys: Vec<K> = self.entries.keys().cloned().collect();
        for k in other.entries.keys() {
            if !keys.contains(k) {
                keys.push(k.clone());
            }
        }
        for k in keys {
            let mut version = self.versions.get(&k).cloned().unwrap_or_default();
            if let Some(ov) = other.versions.get(&k) {
                version.merge(ov);
            }
            let removed_ctx = self.removed.get(&k).cloned().unwrap_or_default();
            let mut value = match (self.entries.remove(&k), other.entries.get(&k)) {
                (Some(mut mine), Some(theirs)) => {
                    mine.merge(theirs);
                    Some(mine)
                }
                (Some(mine), None) => Some(mine),
                (None, Some(theirs)) => Some(theirs.clone()),
                (None, None) => None,
            };
            // Drop the entry if every update it carries was observed by a
            // remover (remove-wins over *observed* state only).
            if removed_ctx.dominates(&version) && version != VersionVector::new() {
                value = None;
            }
            if let Some(v) = value {
                self.entries.insert(k.clone(), v);
                self.versions.insert(k, version);
            } else {
                self.versions.insert(k, version);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GCounter;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn ts(t: u64, rep: u16) -> LamportTimestamp {
        LamportTimestamp::new(t, r(rep))
    }

    #[test]
    fn lww_map_put_get_remove() {
        let mut m = LwwMap::new();
        assert!(m.put("a", 1, ts(1, 0)));
        assert_eq!(m.get(&"a"), Some(&1));
        assert!(m.remove(&"a", ts(2, 0)));
        assert_eq!(m.get(&"a"), None);
        assert!(!m.put("a", 9, ts(1, 0)), "stale write loses to tombstone");
        assert!(m.is_empty());
    }

    #[test]
    fn lww_map_merge_converges() {
        let mut a = LwwMap::new();
        let mut b = LwwMap::new();
        a.put("k", 1, ts(1, 0));
        b.put("k", 2, ts(2, 1));
        b.put("only-b", 3, ts(1, 1));
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(&"k"), Some(&2));
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.keys().count(), 2);
    }

    #[test]
    fn lww_map_remove_of_unknown_key_tombstones() {
        let mut a: LwwMap<&str, i32> = LwwMap::new();
        a.remove(&"ghost", ts(5, 0));
        let mut b = LwwMap::new();
        b.put("ghost", 1, ts(1, 1));
        a.merge(&b);
        assert_eq!(a.get(&"ghost"), None, "newer tombstone wins over older put");
    }

    #[test]
    fn ormap_update_creates_and_mutates() {
        let mut m: OrMap<&str, GCounter> = OrMap::new(r(0));
        m.update_with("c", || GCounter::new(r(0)), |c| c.increment(1));
        m.update_with("c", || GCounter::new(r(0)), |c| c.increment(2));
        assert_eq!(m.get(&"c").unwrap().value(), 3);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn ormap_remove_of_absent_fails() {
        let mut m: OrMap<&str, GCounter> = OrMap::new(r(0));
        assert!(!m.remove(&"nope"));
    }

    #[test]
    fn ormap_observed_remove_deletes() {
        let mut a: OrMap<&str, GCounter> = OrMap::new(r(0));
        a.update_with("k", || GCounter::new(r(0)), |c| c.increment(1));
        let mut b = OrMap::new(r(1));
        b.merge(&a);
        assert!(b.contains(&"k"));
        b.remove(&"k");
        a.merge(&b);
        assert!(!a.contains(&"k"), "fully observed remove wins");
    }

    #[test]
    fn ormap_concurrent_update_resurrects() {
        let mut a: OrMap<&str, GCounter> = OrMap::new(r(0));
        a.update_with("k", || GCounter::new(r(0)), |c| c.increment(1));
        let mut b = OrMap::new(r(1));
        b.merge(&a);
        // Concurrently: b removes, a updates again (unobserved by b).
        b.remove(&"k");
        a.update_with("k", || GCounter::new(r(0)), |c| c.increment(5));
        a.merge(&b);
        assert!(a.contains(&"k"), "concurrent update survives the remove");
    }

    #[test]
    fn ormap_merge_idempotent() {
        let mut a: OrMap<&str, GCounter> = OrMap::new(r(0));
        a.update_with("x", || GCounter::new(r(0)), |c| c.increment(2));
        let snap = a.clone();
        a.merge(&snap);
        assert_eq!(a.get(&"x").unwrap().value(), 2);
        assert_eq!(a.len(), 1);
    }
}

//! Observed-remove set (add-wins), with op-based delta synchronization.

use std::collections::{BTreeMap, BTreeSet};

use er_pi_model::{CanonicalEncode, Dot, DotContext, ReplicaId, VersionVector};
use serde::{Deserialize, Serialize};

use crate::{DeltaSync, StateCrdt};

/// One replicated operation of an [`OrSet`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrSetOp<T> {
    /// Adds `element` under the unique tag `dot`.
    Add {
        /// Added element.
        element: T,
        /// Unique add tag.
        dot: Dot,
    },
    /// Removes the *observed* add tags of `element`.
    Remove {
        /// Removed element.
        element: T,
        /// The add tags observed at the remover; only these die.
        observed: Vec<Dot>,
        /// Unique tag of the remove itself (for delta bookkeeping).
        dot: Dot,
    },
}

impl<T> OrSetOp<T> {
    /// The operation's own unique tag.
    pub fn dot(&self) -> Dot {
        match self {
            OrSetOp::Add { dot, .. } | OrSetOp::Remove { dot, .. } => *dot,
        }
    }
}

/// An observed-remove set: adds win over concurrent removes.
///
/// Every add gets a unique tag; a remove kills exactly the tags the removing
/// replica has *observed*. A concurrent add (with a tag the remover never
/// saw) survives — the "add-wins" conflict resolution of the motivating
/// example's issue-reporting app.
///
/// The type is simultaneously state-based ([`StateCrdt::merge`]) and
/// op-based ([`DeltaSync`]); the op log is retained for delta computation.
///
/// ```
/// use er_pi_model::ReplicaId;
/// use er_pi_rdl::{DeltaSync, OrSet};
///
/// let mut a = OrSet::new(ReplicaId::new(0));
/// let mut b = OrSet::new(ReplicaId::new(1));
///
/// a.insert("otb");
/// b.sync_from(&a); // b observes the add
/// b.remove(&"otb");
/// a.sync_from(&b);
/// assert!(!a.contains(&"otb")); // observed remove took effect
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrSet<T: Ord> {
    replica: ReplicaId,
    /// Live add-tags per element.
    entries: BTreeMap<T, Vec<Dot>>,
    /// Add-tags already killed by a remove (so late-arriving adds with a
    /// removed tag do not resurrect the element under reordered delivery).
    removed_tags: BTreeSet<Dot>,
    /// Full op history (for delta sync).
    log: Vec<OrSetOp<T>>,
    ctx: DotContext,
}

impl<T: Ord + Clone> OrSet<T> {
    /// Creates an empty set owned by `replica`.
    pub fn new(replica: ReplicaId) -> Self {
        OrSet {
            replica,
            entries: BTreeMap::new(),
            removed_tags: BTreeSet::new(),
            log: Vec::new(),
            ctx: DotContext::new(),
        }
    }

    /// The replica this handle mutates on behalf of.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Adds `element`; always succeeds (fresh unique tag). Returns the
    /// generated operation (already applied locally).
    pub fn insert(&mut self, element: T) -> OrSetOp<T> {
        let dot = self.ctx.next_dot(self.replica);
        let op = OrSetOp::Add { element, dot };
        self.integrate(&op);
        self.log.push(op.clone());
        op
    }

    /// Removes `element` if visible. Returns the generated operation, or
    /// `None` if the element is absent (a failed op — nothing to observe).
    pub fn remove(&mut self, element: &T) -> Option<OrSetOp<T>> {
        let observed = self.entries.get(element)?.clone();
        if observed.is_empty() {
            return None;
        }
        let dot = self.ctx.next_dot(self.replica);
        let op = OrSetOp::Remove {
            element: element.clone(),
            observed,
            dot,
        };
        self.integrate(&op);
        self.log.push(op.clone());
        Some(op)
    }

    /// Membership test.
    pub fn contains(&self, element: &T) -> bool {
        self.entries
            .get(element)
            .is_some_and(|tags| !tags.is_empty())
    }

    /// Visible elements, in sorted order.
    pub fn elements(&self) -> Vec<&T> {
        self.entries
            .iter()
            .filter(|(_, tags)| !tags.is_empty())
            .map(|(e, _)| e)
            .collect()
    }

    /// Number of visible elements.
    pub fn len(&self) -> usize {
        self.entries
            .values()
            .filter(|tags| !tags.is_empty())
            .count()
    }

    /// Returns `true` if no element is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn integrate(&mut self, op: &OrSetOp<T>) {
        match op {
            OrSetOp::Add { element, dot } => {
                if self.removed_tags.contains(dot) {
                    return; // this tag was already killed by a remove
                }
                let tags = self.entries.entry(element.clone()).or_default();
                if !tags.contains(dot) {
                    tags.push(*dot);
                }
            }
            OrSetOp::Remove {
                element, observed, ..
            } => {
                self.removed_tags.extend(observed.iter().copied());
                if let Some(tags) = self.entries.get_mut(element) {
                    tags.retain(|t| !observed.contains(t));
                }
            }
        }
    }
}

impl<T: Ord + Clone> DeltaSync for OrSet<T> {
    type Op = OrSetOp<T>;

    fn missing_since(&self, since: &VersionVector) -> Vec<OrSetOp<T>> {
        self.log
            .iter()
            .filter(|op| !since.contains(op.dot()))
            .cloned()
            .collect()
    }

    fn apply_op(&mut self, op: &OrSetOp<T>) {
        if self.ctx.contains(op.dot()) {
            return; // redelivery: idempotent
        }
        self.ctx.add(op.dot());
        self.integrate(op);
        self.log.push(op.clone());
    }

    fn version(&self) -> &VersionVector {
        self.ctx.vector()
    }
}

impl<T: Ord + Clone> StateCrdt for OrSet<T> {
    fn merge(&mut self, other: &Self) {
        self.sync_from(other);
    }
}

impl<T: CanonicalEncode> CanonicalEncode for OrSetOp<T> {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        match self {
            OrSetOp::Add { element, dot } => {
                out.push(0);
                element.encode_canonical(out);
                dot.encode_canonical(out);
            }
            OrSetOp::Remove {
                element,
                observed,
                dot,
            } => {
                out.push(1);
                element.encode_canonical(out);
                observed.encode_canonical(out);
                dot.encode_canonical(out);
            }
        }
    }
}

/// Canonical encoding of the *complete* behavioral state.
///
/// Subsumption soundness demands that equal encodings imply equal future
/// behavior under any suffix of events, so every field that influences a
/// future operation is included: the visible entries *and* their add-tags
/// (observed removes kill exactly these), the removed-tag tombstones
/// (resurrection protection), the full op log in arrival order (delta sync
/// replays it), the dot context (idempotent redelivery + tag allocation),
/// and the owning replica id. This is strictly stronger than hashing
/// `elements()`, which is a lossy projection.
impl<T: Ord + CanonicalEncode> CanonicalEncode for OrSet<T> {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.replica.encode_canonical(out);
        (self.entries.len() as u64).encode_canonical(out);
        for (element, tags) in &self.entries {
            element.encode_canonical(out);
            tags.encode_canonical(out);
        }
        (self.removed_tags.len() as u64).encode_canonical(out);
        for dot in &self.removed_tags {
            dot.encode_canonical(out);
        }
        self.log.encode_canonical(out);
        self.ctx.encode_canonical(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn insert_and_contains() {
        let mut s = OrSet::new(r(0));
        s.insert(1);
        assert!(s.contains(&1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.elements(), vec![&1]);
    }

    #[test]
    fn remove_of_absent_is_failed_op() {
        let mut s: OrSet<i32> = OrSet::new(r(0));
        assert!(s.remove(&1).is_none());
    }

    #[test]
    fn observed_remove_kills_synced_adds() {
        let mut a = OrSet::new(r(0));
        let mut b = OrSet::new(r(1));
        a.insert("x");
        b.sync_from(&a);
        assert!(b.contains(&"x"));
        b.remove(&"x");
        a.sync_from(&b);
        assert!(!a.contains(&"x"));
        assert!(!b.contains(&"x"));
    }

    #[test]
    fn concurrent_add_survives_remove_add_wins() {
        let mut a = OrSet::new(r(0));
        let mut b = OrSet::new(r(1));
        a.insert("x");
        b.sync_from(&a);
        // Concurrently: b removes, a re-adds with a fresh tag.
        b.remove(&"x");
        a.insert("x");
        a.sync_from(&b);
        b.sync_from(&a);
        // The fresh add was never observed by b's remove: it survives.
        assert!(a.contains(&"x"));
        assert!(b.contains(&"x"));
    }

    #[test]
    fn unsynced_remove_does_not_kill_unseen_add() {
        // The motivating example's bug scenario: B removes "otb" WITHOUT
        // having observed A's add — the remove is a no-op on the tag level.
        let mut a = OrSet::new(r(0));
        let mut b = OrSet::new(r(1));
        a.insert("otb");
        // b never synced: remove fails locally.
        assert!(b.remove(&"otb").is_none());
        b.sync_from(&a);
        assert!(b.contains(&"otb"));
    }

    #[test]
    fn redelivery_is_idempotent() {
        let mut a = OrSet::new(r(0));
        let op = a.insert(7);
        let mut b = OrSet::new(r(1));
        b.apply_op(&op);
        let before = b.clone();
        b.apply_op(&op);
        assert_eq!(b, before);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn delta_contains_only_missing_ops() {
        let mut a = OrSet::new(r(0));
        a.insert(1);
        let mut b = OrSet::new(r(1));
        b.sync_from(&a);
        a.insert(2);
        let delta = a.missing_since(b.version());
        assert_eq!(delta.len(), 1);
        assert!(matches!(&delta[0], OrSetOp::Add { element: 2, .. }));
    }

    #[test]
    fn three_replica_convergence_any_order() {
        let mut a = OrSet::new(r(0));
        let mut b = OrSet::new(r(1));
        let mut c = OrSet::new(r(2));
        let op1 = a.insert("p");
        let op2 = b.insert("q");
        let op3 = b.insert("r");
        // c receives ops out of order and duplicated.
        c.apply_op(&op3);
        c.apply_op(&op1);
        c.apply_op(&op2);
        c.apply_op(&op1);
        a.sync_from(&b);
        b.sync_from(&a);
        assert_eq!(a.elements(), c.elements());
        assert_eq!(b.elements(), c.elements());
        assert_eq!(c.len(), 3);
    }

    fn enc<T: Ord + Clone + CanonicalEncode>(s: &OrSet<T>) -> Vec<u8> {
        let mut out = Vec::new();
        s.encode_canonical(&mut out);
        out
    }

    #[test]
    fn canonical_encoding_is_deterministic_and_clone_stable() {
        let mut a = OrSet::new(r(0));
        a.insert("x");
        a.insert("y");
        a.remove(&"x");
        assert_eq!(enc(&a), enc(&a));
        assert_eq!(enc(&a), enc(&a.clone()));
    }

    #[test]
    fn canonical_encoding_sees_past_the_visible_projection() {
        // Same `elements()` on both sides, but different hidden state: a
        // remove left tombstones + log entries behind. A digest of the
        // visible set would wrongly subsume these; the canonical encoding
        // must distinguish them.
        let mut a = OrSet::new(r(0));
        a.insert("x");
        let mut b = a.clone();
        b.insert("tmp");
        b.remove(&"tmp");
        assert_eq!(a.elements(), b.elements());
        assert_ne!(enc(&a), enc(&b));
    }

    #[test]
    fn canonical_encoding_includes_replica_identity() {
        let a: OrSet<i32> = OrSet::new(r(0));
        let b: OrSet<i32> = OrSet::new(r(1));
        assert_ne!(enc(&a), enc(&b));
    }

    #[test]
    fn merge_matches_sync_semantics() {
        let mut a = OrSet::new(r(0));
        let mut b = OrSet::new(r(1));
        a.insert(1);
        b.insert(2);
        let c = a.merged(&b);
        assert_eq!(c.len(), 2);
        // Idempotent.
        assert_eq!(c.merged(&c).elements(), c.elements());
    }
}

//! Yorkie-style replicated JSON document.
//!
//! [Yorkie](https://github.com/yorkie-team/yorkie) represents each document
//! as a JSON tree whose nodes are CRDTs: object keys resolve by
//! last-write-wins, arrays are RGAs. This substrate mirrors that model:
//!
//! * object keys → LWW by Lamport timestamp,
//! * arrays → [`Rga`] with both the correct `MoveAfter` and the naive
//!   delete+insert move (the Yorkie-1 bug surface, issue #676),
//! * whole-subtree `set` → the operation whose misuse over nested objects is
//!   the Yorkie-2 bug (issue #663).

use std::collections::BTreeMap;

use er_pi_model::{
    CanonicalEncode, Dot, DotContext, LamportClock, LamportTimestamp, ReplicaId, Value,
    VersionVector,
};
use serde::{Deserialize, Serialize};

use crate::{DeltaSync, Rga, RgaOp, StateCrdt};

/// One segment of a document path (an object key).
pub type PathSegment = String;

/// Errors returned by the document's local mutation API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// The path does not resolve to a node.
    NotFound(Vec<PathSegment>),
    /// The path resolves to a node of the wrong shape.
    WrongShape {
        /// The offending path.
        path: Vec<PathSegment>,
        /// What the operation expected ("object", "array", ...).
        expected: &'static str,
    },
    /// An array index was out of bounds.
    IndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Current array length.
        len: usize,
    },
}

impl std::fmt::Display for DocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DocError::NotFound(p) => write!(f, "path {} not found", p.join(".")),
            DocError::WrongShape { path, expected } => {
                write!(f, "path {} is not an {expected}", path.join("."))
            }
            DocError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
        }
    }
}

impl std::error::Error for DocError {}

/// A read-side snapshot of (part of) the document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JsonValue {
    /// A primitive leaf.
    Prim(Value),
    /// An object of nested values.
    Object(BTreeMap<String, JsonValue>),
    /// An array of primitive values.
    Array(Vec<Value>),
}

impl JsonValue {
    /// Returns the primitive payload, if this is a leaf.
    pub fn as_prim(&self) -> Option<&Value> {
        match self {
            JsonValue::Prim(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// One replicated operation of a [`JsonDoc`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocOp {
    /// LWW-sets the key at `path` to a primitive.
    SetPrim {
        /// Full path, last segment is the written key.
        path: Vec<PathSegment>,
        /// Written value.
        value: Value,
        /// Write timestamp (LWW).
        ts: LamportTimestamp,
        /// Delivery-tracking tag.
        dot: Dot,
    },
    /// LWW-replaces the subtree at `path` with an object of primitives.
    ///
    /// This is the whole-subtree `set` whose application to nested objects
    /// silently drops concurrent sibling writes (the Yorkie-2 defect).
    SetObject {
        /// Full path, last segment is the replaced key.
        path: Vec<PathSegment>,
        /// New object content.
        entries: BTreeMap<String, Value>,
        /// Write timestamp (LWW).
        ts: LamportTimestamp,
        /// Delivery-tracking tag.
        dot: Dot,
    },
    /// LWW-removes the key at `path`.
    Remove {
        /// Full path, last segment is the removed key.
        path: Vec<PathSegment>,
        /// Write timestamp (LWW).
        ts: LamportTimestamp,
        /// Delivery-tracking tag.
        dot: Dot,
    },
    /// LWW-creates an empty array at `path`.
    NewArray {
        /// Full path, last segment is the created key.
        path: Vec<PathSegment>,
        /// Write timestamp (LWW).
        ts: LamportTimestamp,
        /// Delivery-tracking tag.
        dot: Dot,
    },
    /// Applies an RGA operation to the array at `path`.
    Arr {
        /// Path of the array.
        path: Vec<PathSegment>,
        /// The inner RGA operation.
        op: RgaOp<Value>,
        /// Delivery-tracking tag (document level).
        dot: Dot,
    },
}

impl DocOp {
    /// The document-level delivery tag.
    pub fn dot(&self) -> Dot {
        match self {
            DocOp::SetPrim { dot, .. }
            | DocOp::SetObject { dot, .. }
            | DocOp::Remove { dot, .. }
            | DocOp::NewArray { dot, .. }
            | DocOp::Arr { dot, .. } => *dot,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Node {
    Prim(Value),
    Obj(BTreeMap<String, Entry>),
    Arr(Rga<Value>),
    /// LWW tombstone left behind by `Remove`.
    Removed,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    /// LWW timestamp of the last value assignment at this key.
    ts: LamportTimestamp,
    /// Timestamp of the last *wholesale replacement* (SetObject/Remove) of
    /// this key; deeper writes older than this are discarded, which is what
    /// makes "set over a nested object" drop concurrent sibling writes
    /// (the Yorkie-2 defect surface).
    replaced_at: Option<LamportTimestamp>,
    node: Node,
}

/// A replicated JSON document.
///
/// ```
/// use er_pi_model::{ReplicaId, Value};
/// use er_pi_rdl::{DeltaSync, JsonDoc};
///
/// let mut a = JsonDoc::new(ReplicaId::new(0));
/// let mut b = JsonDoc::new(ReplicaId::new(1));
/// a.set(&["profile", "name"], Value::from("ada"))?;
/// b.sync_from(&a);
/// assert_eq!(
///     b.get(&["profile", "name"]).unwrap().as_prim(),
///     Some(&Value::from("ada"))
/// );
/// # Ok::<(), er_pi_rdl::DocError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonDoc {
    replica: ReplicaId,
    clock: LamportClock,
    root: BTreeMap<String, Entry>,
    ctx: DotContext,
    log: Vec<DocOp>,
    pending: Vec<DocOp>,
}

impl JsonDoc {
    /// Creates an empty document owned by `replica`.
    pub fn new(replica: ReplicaId) -> Self {
        JsonDoc {
            replica,
            clock: LamportClock::new(replica),
            root: BTreeMap::new(),
            ctx: DotContext::new(),
            log: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// The replica this handle mutates on behalf of.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    fn path_vec(path: &[&str]) -> Vec<PathSegment> {
        path.iter().map(|s| (*s).to_owned()).collect()
    }

    fn record(&mut self, op: DocOp) -> DocOp {
        self.apply_resolved(&op);
        self.log.push(op.clone());
        op
    }

    /// LWW-sets `path` to a primitive `value`.
    ///
    /// # Errors
    ///
    /// Returns [`DocError::WrongShape`] if an intermediate segment resolves
    /// to a primitive or array owned by a *newer* write (the set would lose).
    pub fn set(&mut self, path: &[&str], value: Value) -> Result<DocOp, DocError> {
        assert!(!path.is_empty(), "path must be non-empty");
        let ts = self.clock.tick();
        let dot = self.ctx.next_dot(self.replica);
        Ok(self.record(DocOp::SetPrim {
            path: Self::path_vec(path),
            value,
            ts,
            dot,
        }))
    }

    /// LWW-replaces the subtree at `path` with an object of primitives.
    pub fn set_object(
        &mut self,
        path: &[&str],
        entries: BTreeMap<String, Value>,
    ) -> Result<DocOp, DocError> {
        assert!(!path.is_empty(), "path must be non-empty");
        let ts = self.clock.tick();
        let dot = self.ctx.next_dot(self.replica);
        Ok(self.record(DocOp::SetObject {
            path: Self::path_vec(path),
            entries,
            ts,
            dot,
        }))
    }

    /// LWW-removes the key at `path`.
    pub fn remove(&mut self, path: &[&str]) -> Result<DocOp, DocError> {
        assert!(!path.is_empty(), "path must be non-empty");
        let ts = self.clock.tick();
        let dot = self.ctx.next_dot(self.replica);
        Ok(self.record(DocOp::Remove {
            path: Self::path_vec(path),
            ts,
            dot,
        }))
    }

    /// LWW-creates an empty array at `path`.
    pub fn new_array(&mut self, path: &[&str]) -> Result<DocOp, DocError> {
        assert!(!path.is_empty(), "path must be non-empty");
        let ts = self.clock.tick();
        let dot = self.ctx.next_dot(self.replica);
        Ok(self.record(DocOp::NewArray {
            path: Self::path_vec(path),
            ts,
            dot,
        }))
    }

    fn with_array<R>(
        &mut self,
        path: &[&str],
        f: impl FnOnce(&mut Rga<Value>) -> Result<R, DocError>,
    ) -> Result<R, DocError> {
        let segs = Self::path_vec(path);
        let node =
            resolve_mut(&mut self.root, &segs).ok_or_else(|| DocError::NotFound(segs.clone()))?;
        match node {
            Node::Arr(rga) => f(rga),
            _ => Err(DocError::WrongShape {
                path: segs,
                expected: "array",
            }),
        }
    }

    fn record_arr(&mut self, path: &[&str], op: RgaOp<Value>) -> DocOp {
        let dot = self.ctx.next_dot(self.replica);
        let doc_op = DocOp::Arr {
            path: Self::path_vec(path),
            op,
            dot,
        };
        self.log.push(doc_op.clone());
        doc_op
    }

    /// Appends `value` to the array at `path`.
    pub fn arr_push(&mut self, path: &[&str], value: Value) -> Result<DocOp, DocError> {
        let op = self.with_array(path, |rga| Ok(rga.push(value)))?;
        Ok(self.record_arr(path, op))
    }

    /// Inserts `value` at `idx` in the array at `path`.
    pub fn arr_insert(
        &mut self,
        path: &[&str],
        idx: usize,
        value: Value,
    ) -> Result<DocOp, DocError> {
        let op = self.with_array(path, |rga| {
            if idx > rga.len() {
                return Err(DocError::IndexOutOfBounds {
                    index: idx,
                    len: rga.len(),
                });
            }
            Ok(rga.insert(idx, value))
        })?;
        Ok(self.record_arr(path, op))
    }

    /// Deletes index `idx` of the array at `path`.
    pub fn arr_delete(&mut self, path: &[&str], idx: usize) -> Result<DocOp, DocError> {
        let op = self.with_array(path, |rga| {
            rga.delete(idx).ok_or(DocError::IndexOutOfBounds {
                index: idx,
                len: rga.len(),
            })
        })?;
        Ok(self.record_arr(path, op))
    }

    /// Moves array element `from` to position `to` using the *correct*
    /// stable-identity move (Yorkie's fixed `MoveAfter`).
    pub fn arr_move(&mut self, path: &[&str], from: usize, to: usize) -> Result<DocOp, DocError> {
        let op = self.with_array(path, |rga| {
            rga.move_item(from, to).ok_or(DocError::IndexOutOfBounds {
                index: from.max(to),
                len: rga.len(),
            })
        })?;
        Ok(self.record_arr(path, op))
    }

    /// Moves array element `from` to position `to` using the *naive*
    /// delete+insert — the application-level move that duplicates under
    /// concurrency (misconception #3 / bug Yorkie-1).
    pub fn arr_move_naive(
        &mut self,
        path: &[&str],
        from: usize,
        to: usize,
    ) -> Result<(DocOp, DocOp), DocError> {
        let (del, ins) = self.with_array(path, |rga| {
            rga.move_naive(from, to).ok_or(DocError::IndexOutOfBounds {
                index: from.max(to),
                len: rga.len(),
            })
        })?;
        let del = self.record_arr(path, del);
        let ins = self.record_arr(path, ins);
        Ok((del, ins))
    }

    /// Reads the snapshot at `path` (`&[]` reads the whole document root).
    pub fn get(&self, path: &[&str]) -> Option<JsonValue> {
        if path.is_empty() {
            return Some(snapshot_obj(&self.root));
        }
        let segs = Self::path_vec(path);
        resolve(&self.root, &segs).map(snapshot_node)
    }

    /// Snapshot of the whole document.
    pub fn root(&self) -> JsonValue {
        snapshot_obj(&self.root)
    }

    /// Applies `op` to the tree, creating intermediate objects as needed.
    /// Returns `false` if the op cannot be applied yet (dangling array path).
    fn apply_resolved(&mut self, op: &DocOp) -> bool {
        match op {
            DocOp::SetPrim {
                path, value, ts, ..
            } => {
                self.clock.observe(*ts);
                set_at(&mut self.root, path, Node::Prim(value.clone()), *ts, false);
                true
            }
            DocOp::SetObject {
                path, entries, ts, ..
            } => {
                self.clock.observe(*ts);
                let obj = entries
                    .iter()
                    .map(|(k, v)| {
                        (
                            k.clone(),
                            Entry {
                                ts: *ts,
                                replaced_at: None,
                                node: Node::Prim(v.clone()),
                            },
                        )
                    })
                    .collect();
                set_at(&mut self.root, path, Node::Obj(obj), *ts, true);
                true
            }
            DocOp::Remove { path, ts, .. } => {
                self.clock.observe(*ts);
                set_at(&mut self.root, path, Node::Removed, *ts, true);
                true
            }
            DocOp::NewArray { path, ts, .. } => {
                self.clock.observe(*ts);
                let arr = Rga::new(self.replica);
                set_at(&mut self.root, path, Node::Arr(arr), *ts, false);
                true
            }
            DocOp::Arr { path, op, .. } => match resolve_mut(&mut self.root, path) {
                Some(Node::Arr(rga)) => {
                    rga.apply_op(op);
                    true
                }
                _ => false,
            },
        }
    }

    fn flush_pending(&mut self) {
        loop {
            let mut progressed = false;
            let pending = std::mem::take(&mut self.pending);
            for op in pending {
                if self.apply_resolved(&op) {
                    progressed = true;
                    self.log.push(op);
                } else {
                    self.pending.push(op);
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

impl DeltaSync for JsonDoc {
    type Op = DocOp;

    fn missing_since(&self, since: &VersionVector) -> Vec<DocOp> {
        self.log
            .iter()
            .chain(self.pending.iter())
            .filter(|op| !since.contains(op.dot()))
            .cloned()
            .collect()
    }

    fn apply_op(&mut self, op: &DocOp) {
        if self.ctx.contains(op.dot()) {
            return;
        }
        self.ctx.add(op.dot());
        if self.apply_resolved(op) {
            self.log.push(op.clone());
            self.flush_pending();
        } else {
            self.pending.push(op.clone());
        }
    }

    fn version(&self) -> &VersionVector {
        self.ctx.vector()
    }
}

impl StateCrdt for JsonDoc {
    fn merge(&mut self, other: &Self) {
        self.sync_from(other);
    }
}

impl CanonicalEncode for DocOp {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        match self {
            DocOp::SetPrim {
                path,
                value,
                ts,
                dot,
            } => {
                out.push(0);
                path.encode_canonical(out);
                value.encode_canonical(out);
                ts.encode_canonical(out);
                dot.encode_canonical(out);
            }
            DocOp::SetObject {
                path,
                entries,
                ts,
                dot,
            } => {
                out.push(1);
                path.encode_canonical(out);
                entries.encode_canonical(out);
                ts.encode_canonical(out);
                dot.encode_canonical(out);
            }
            DocOp::Remove { path, ts, dot } => {
                out.push(2);
                path.encode_canonical(out);
                ts.encode_canonical(out);
                dot.encode_canonical(out);
            }
            DocOp::NewArray { path, ts, dot } => {
                out.push(3);
                path.encode_canonical(out);
                ts.encode_canonical(out);
                dot.encode_canonical(out);
            }
            DocOp::Arr { path, op, dot } => {
                out.push(4);
                path.encode_canonical(out);
                op.encode_canonical(out);
                dot.encode_canonical(out);
            }
        }
    }
}

impl CanonicalEncode for Node {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        match self {
            Node::Prim(v) => {
                out.push(0);
                v.encode_canonical(out);
            }
            Node::Obj(entries) => {
                out.push(1);
                entries.encode_canonical(out);
            }
            Node::Arr(rga) => {
                out.push(2);
                rga.encode_canonical(out);
            }
            Node::Removed => out.push(3),
        }
    }
}

impl CanonicalEncode for Entry {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.ts.encode_canonical(out);
        self.replaced_at.encode_canonical(out);
        self.node.encode_canonical(out);
    }
}

impl CanonicalEncode for JsonDoc {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        // The LWW timestamps inside each entry steer conflict resolution of
        // future writes, so they are part of behavioral state — as are the
        // pending buffer and the dot context's delivery filter.
        self.replica.encode_canonical(out);
        self.clock.encode_canonical(out);
        self.root.encode_canonical(out);
        self.ctx.encode_canonical(out);
        self.log.encode_canonical(out);
        self.pending.encode_canonical(out);
    }
}

/// LWW-writes `node` at `path` under `ts`, creating intermediate objects.
/// `replaces` marks wholesale replacements (SetObject/Remove), which also
/// shadow *older deeper* writes arriving later.
fn set_at(
    root: &mut BTreeMap<String, Entry>,
    path: &[PathSegment],
    node: Node,
    ts: LamportTimestamp,
    replaces: bool,
) {
    debug_assert!(!path.is_empty());
    let mut current = root;
    for seg in &path[..path.len() - 1] {
        let entry = current.entry(seg.clone()).or_insert_with(|| Entry {
            ts,
            replaced_at: None,
            node: Node::Obj(BTreeMap::new()),
        });
        if entry.replaced_at.is_some_and(|r| r > ts) {
            return; // an ancestor was replaced after this write: it loses
        }
        if !matches!(entry.node, Node::Obj(_)) {
            // Traversing through a non-object: a deeper write implies the
            // object exists; it wins only if newer.
            if ts > entry.ts {
                entry.ts = ts;
                entry.node = Node::Obj(BTreeMap::new());
            } else {
                return; // older write loses silently (LWW)
            }
        }
        match &mut entry.node {
            Node::Obj(map) => current = map,
            _ => unreachable!("just normalized to an object"),
        }
    }
    let key = &path[path.len() - 1];
    match current.get_mut(key) {
        Some(entry) => {
            if ts > entry.ts {
                entry.ts = ts;
                entry.node = node;
                if replaces {
                    entry.replaced_at = Some(ts);
                }
            }
        }
        None => {
            current.insert(
                key.clone(),
                Entry {
                    ts,
                    replaced_at: replaces.then_some(ts),
                    node,
                },
            );
        }
    }
}

fn resolve<'a>(root: &'a BTreeMap<String, Entry>, path: &[PathSegment]) -> Option<&'a Node> {
    let mut current = root;
    for (i, seg) in path.iter().enumerate() {
        let entry = current.get(seg)?;
        if i == path.len() - 1 {
            return match entry.node {
                Node::Removed => None,
                ref n => Some(n),
            };
        }
        match &entry.node {
            Node::Obj(map) => current = map,
            _ => return None,
        }
    }
    None
}

fn resolve_mut<'a>(
    root: &'a mut BTreeMap<String, Entry>,
    path: &[PathSegment],
) -> Option<&'a mut Node> {
    let mut current = root;
    for (i, seg) in path.iter().enumerate() {
        let entry = current.get_mut(seg)?;
        if i == path.len() - 1 {
            return match entry.node {
                Node::Removed => None,
                ref mut n => Some(n),
            };
        }
        match &mut entry.node {
            Node::Obj(map) => current = map,
            _ => return None,
        }
    }
    None
}

fn snapshot_node(node: &Node) -> JsonValue {
    match node {
        Node::Prim(v) => JsonValue::Prim(v.clone()),
        Node::Obj(map) => snapshot_obj(map),
        Node::Arr(rga) => JsonValue::Array(rga.values().into_iter().cloned().collect()),
        Node::Removed => JsonValue::Prim(Value::Null),
    }
}

fn snapshot_obj(map: &BTreeMap<String, Entry>) -> JsonValue {
    JsonValue::Object(
        map.iter()
            .filter(|(_, e)| !matches!(e.node, Node::Removed))
            .map(|(k, e)| (k.clone(), snapshot_node(&e.node)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn set_and_get_nested() {
        let mut d = JsonDoc::new(r(0));
        d.set(&["a", "b", "c"], Value::from(1)).unwrap();
        assert_eq!(
            d.get(&["a", "b", "c"]).unwrap().as_prim(),
            Some(&Value::from(1))
        );
        assert!(d.get(&["a", "b"]).unwrap().as_object().is_some());
        assert!(d.get(&["missing"]).is_none());
    }

    #[test]
    fn remove_hides_key() {
        let mut d = JsonDoc::new(r(0));
        d.set(&["k"], Value::from(1)).unwrap();
        d.remove(&["k"]).unwrap();
        assert!(d.get(&["k"]).is_none());
        let root = d.root();
        assert!(root.as_object().unwrap().is_empty());
    }

    #[test]
    fn lww_newer_write_wins_across_replicas() {
        let mut a = JsonDoc::new(r(0));
        let mut b = JsonDoc::new(r(1));
        a.set(&["k"], Value::from("old")).unwrap();
        b.sync_from(&a);
        b.set(&["k"], Value::from("new")).unwrap();
        a.sync_from(&b);
        assert_eq!(a.get(&["k"]).unwrap().as_prim(), Some(&Value::from("new")));
    }

    #[test]
    fn concurrent_sibling_sets_both_survive() {
        let mut a = JsonDoc::new(r(0));
        let mut b = JsonDoc::new(r(1));
        a.set(&["obj", "x"], Value::from(1)).unwrap();
        b.set(&["obj", "y"], Value::from(2)).unwrap();
        a.sync_from(&b);
        b.sync_from(&a);
        assert_eq!(a.root(), b.root());
        let obj = a.get(&["obj"]).unwrap();
        assert_eq!(obj.as_object().unwrap().len(), 2);
    }

    #[test]
    fn whole_object_set_drops_concurrent_sibling() {
        // The Yorkie-2 defect: replacing a nested object wholesale loses a
        // concurrent sibling write.
        let mut a = JsonDoc::new(r(0));
        let mut b = JsonDoc::new(r(1));
        a.set(&["obj", "x"], Value::from(1)).unwrap();
        b.sync_from(&a);
        // Concurrently: b sets a sibling, a replaces the whole object.
        b.set(&["obj", "y"], Value::from(2)).unwrap();
        let mut replacement = BTreeMap::new();
        replacement.insert("x".to_owned(), Value::from(10));
        // Ensure a's replacement is the LWW winner (two warm-up ticks push
        // a's clock strictly past b's concurrent write).
        a.set(&["warmup1"], Value::from(0)).unwrap();
        a.set(&["warmup2"], Value::from(0)).unwrap();
        a.set_object(&["obj"], replacement).unwrap();
        a.sync_from(&b);
        b.sync_from(&a);
        assert_eq!(a.root(), b.root(), "replicas converge");
        let obj = a.get(&["obj"]).unwrap();
        assert!(
            obj.as_object().unwrap().get("y").is_none(),
            "sibling write was silently dropped: {obj:?}"
        );
    }

    #[test]
    fn arrays_push_insert_delete() {
        let mut d = JsonDoc::new(r(0));
        d.new_array(&["list"]).unwrap();
        d.arr_push(&["list"], Value::from(1)).unwrap();
        d.arr_push(&["list"], Value::from(3)).unwrap();
        d.arr_insert(&["list"], 1, Value::from(2)).unwrap();
        assert_eq!(
            d.get(&["list"]).unwrap().as_array().unwrap(),
            &[Value::from(1), Value::from(2), Value::from(3)]
        );
        d.arr_delete(&["list"], 0).unwrap();
        assert_eq!(d.get(&["list"]).unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn array_ops_error_cases() {
        let mut d = JsonDoc::new(r(0));
        assert!(matches!(
            d.arr_push(&["nope"], Value::from(1)),
            Err(DocError::NotFound(_))
        ));
        d.set(&["notarr"], Value::from(1)).unwrap();
        assert!(matches!(
            d.arr_push(&["notarr"], Value::from(1)),
            Err(DocError::WrongShape { .. })
        ));
        d.new_array(&["list"]).unwrap();
        assert!(matches!(
            d.arr_delete(&["list"], 0),
            Err(DocError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            d.arr_insert(&["list"], 5, Value::from(1)),
            Err(DocError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn correct_array_move_converges_without_duplication() {
        let mut a = JsonDoc::new(r(0));
        a.new_array(&["l"]).unwrap();
        for v in ["x", "y", "z"] {
            a.arr_push(&["l"], Value::from(v)).unwrap();
        }
        let mut b = JsonDoc::new(r(1));
        b.sync_from(&a);
        a.arr_move(&["l"], 0, 2).unwrap();
        b.arr_move(&["l"], 0, 1).unwrap();
        a.sync_from(&b);
        b.sync_from(&a);
        assert_eq!(a.root(), b.root());
        let arr = a.get(&["l"]).unwrap().as_array().unwrap().to_vec();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr.iter().filter(|v| **v == Value::from("x")).count(), 1);
    }

    #[test]
    fn naive_array_move_duplicates_under_concurrency() {
        let mut a = JsonDoc::new(r(0));
        a.new_array(&["l"]).unwrap();
        for v in ["x", "y", "z"] {
            a.arr_push(&["l"], Value::from(v)).unwrap();
        }
        let mut b = JsonDoc::new(r(1));
        b.sync_from(&a);
        a.arr_move_naive(&["l"], 0, 2).unwrap();
        b.arr_move_naive(&["l"], 0, 1).unwrap();
        a.sync_from(&b);
        b.sync_from(&a);
        assert_eq!(a.root(), b.root());
        let arr = a.get(&["l"]).unwrap().as_array().unwrap().to_vec();
        assert_eq!(
            arr.iter().filter(|v| **v == Value::from("x")).count(),
            2,
            "naive move duplicated the element"
        );
    }

    #[test]
    fn out_of_order_array_op_is_buffered() {
        let mut a = JsonDoc::new(r(0));
        let mk_arr = a.new_array(&["l"]).unwrap();
        let push = a.arr_push(&["l"], Value::from(7)).unwrap();
        let mut b = JsonDoc::new(r(1));
        // Array op before the array exists: buffered.
        b.apply_op(&push);
        assert!(b.get(&["l"]).is_none());
        b.apply_op(&mk_arr);
        assert_eq!(
            b.get(&["l"]).unwrap().as_array().unwrap(),
            &[Value::from(7)]
        );
    }

    #[test]
    fn redelivery_is_idempotent() {
        let mut a = JsonDoc::new(r(0));
        let op = a.set(&["k"], Value::from(5)).unwrap();
        let mut b = JsonDoc::new(r(1));
        b.apply_op(&op);
        b.apply_op(&op);
        assert_eq!(b.get(&["k"]).unwrap().as_prim(), Some(&Value::from(5)));
        assert_eq!(b.version().total(), 1);
    }

    #[test]
    fn doc_error_display() {
        let e = DocError::NotFound(vec!["a".into(), "b".into()]);
        assert_eq!(e.to_string(), "path a.b not found");
        let e = DocError::IndexOutOfBounds { index: 3, len: 1 };
        assert!(e.to_string().contains("out of bounds"));
    }
}

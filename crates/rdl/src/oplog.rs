//! OrbitDB-style Merkle-CRDT operation log.
//!
//! [OrbitDB](https://github.com/orbitdb/orbitdb) stores every database as an
//! append-only log whose entries form a Merkle DAG: each entry references the
//! current *heads* (entries nothing points at yet) by content hash and
//! carries a Lamport clock plus a writer identity. Two logs merge by DAG
//! union; reads linearize the DAG by `(clock, tie-break)`.
//!
//! The bugs this substrate lets the subjects reproduce:
//!
//! * **OrbitDB-1** (issue #513) — the tie-breaker is the writer identity, so
//!   two writers with the *same* identity produce an undefined order
//!   ([`LogSortOrder::ClockThenIdentity`] vs the defective
//!   [`LogSortOrder::ClockOnly`]).
//! * **OrbitDB-2** (issue #512) — a Lamport clock "set far into the future"
//!   makes every peer reject subsequent entries (see
//!   [`MerkleLog::set_max_clock_skew`]).
//! * **OrbitDB-4** (issue #583) — partially synced DAGs leave *dangling*
//!   head references ([`MerkleLog::dangling_refs`]).

use er_pi_model::{
    CanonicalEncode, Dot, DotContext, LamportClock, LamportTimestamp, ReplicaId, Value,
    VersionVector,
};
use serde::{Deserialize, Serialize};

use crate::{fnv1a64, DeltaSync, StateCrdt};

/// Content hash of one log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MerkleHash(pub u64);

impl std::fmt::Display for MerkleHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// How reads linearize the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LogSortOrder {
    /// Sort by `(clock time, identity, hash)` — fully deterministic.
    #[default]
    ClockThenIdentity,
    /// Sort by clock time only; ties keep *insertion order* — the defective
    /// behaviour of OrbitDB-1 when identities collide.
    ClockOnly,
}

/// One entry of the Merkle log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Content hash (computed over clock, identity, payload, and refs).
    pub hash: MerkleHash,
    /// Lamport timestamp of the append.
    pub clock: LamportTimestamp,
    /// Writer identity string (OrbitDB's public-key identity).
    pub identity: String,
    /// Entry payload.
    pub payload: Value,
    /// Hashes of the heads this entry was appended on top of.
    pub refs: Vec<MerkleHash>,
    /// Delivery-tracking tag.
    pub dot: Dot,
}

impl LogEntry {
    fn compute_hash(
        clock: LamportTimestamp,
        identity: &str,
        payload: &Value,
        refs: &[MerkleHash],
        dot: Dot,
    ) -> MerkleHash {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&clock.time.to_le_bytes());
        bytes.extend_from_slice(&clock.replica.raw().to_le_bytes());
        bytes.extend_from_slice(identity.as_bytes());
        bytes.extend_from_slice(payload.to_string().as_bytes());
        for r in refs {
            bytes.extend_from_slice(&r.0.to_le_bytes());
        }
        bytes.extend_from_slice(&dot.counter.to_le_bytes());
        bytes.extend_from_slice(&dot.replica.raw().to_le_bytes());
        MerkleHash(fnv1a64(&bytes))
    }
}

/// The synchronization operation of a [`MerkleLog`] is simply an entry.
pub type MerkleLogOp = LogEntry;

/// An OrbitDB-style Merkle-CRDT log.
///
/// ```
/// use er_pi_model::{ReplicaId, Value};
/// use er_pi_rdl::{DeltaSync, MerkleLog};
///
/// let mut a = MerkleLog::new(ReplicaId::new(0), "alice");
/// let mut b = MerkleLog::new(ReplicaId::new(1), "bob");
/// a.append(Value::from("hello"));
/// b.append(Value::from("world"));
/// a.sync_from(&b);
/// b.sync_from(&a);
/// assert_eq!(a.values(), b.values());
/// assert_eq!(a.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleLog {
    replica: ReplicaId,
    identity: String,
    clock: LamportClock,
    sort: LogSortOrder,
    entries: Vec<LogEntry>,
    ctx: DotContext,
    /// Reject incoming entries whose clock exceeds ours by more than this.
    max_clock_skew: Option<u64>,
    /// Entries rejected due to clock skew (progress-halt symptom).
    rejected: u64,
}

impl MerkleLog {
    /// Creates an empty log for `replica` writing as `identity`.
    pub fn new(replica: ReplicaId, identity: impl Into<String>) -> Self {
        MerkleLog {
            replica,
            identity: identity.into(),
            clock: LamportClock::new(replica),
            sort: LogSortOrder::default(),
            entries: Vec::new(),
            ctx: DotContext::new(),
            max_clock_skew: None,
            rejected: 0,
        }
    }

    /// Overrides the read-side sort order (defaults to the deterministic
    /// [`LogSortOrder::ClockThenIdentity`]).
    pub fn set_sort_order(&mut self, sort: LogSortOrder) {
        self.sort = sort;
    }

    /// Configures clock-skew rejection: incoming entries with
    /// `clock.time > local_time + skew` are dropped (modelling the
    /// progress-halt of OrbitDB-2). `None` disables the check.
    pub fn set_max_clock_skew(&mut self, skew: Option<u64>) {
        self.max_clock_skew = skew;
    }

    /// Number of entries rejected by the skew check so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// The writer identity of this handle.
    pub fn identity(&self) -> &str {
        &self.identity
    }

    /// The replica this handle mutates on behalf of.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Forces the local Lamport clock (models the poisoned-clock scenario).
    pub fn force_clock(&mut self, time: u64) {
        self.clock.force(time);
    }

    /// The current local Lamport time.
    pub fn clock_time(&self) -> u64 {
        self.clock.time()
    }

    /// Appends `payload` on top of the current heads; returns the new entry.
    pub fn append(&mut self, payload: Value) -> LogEntry {
        let clock = self.clock.tick();
        let refs = self.heads();
        let dot = self.ctx.next_dot(self.replica);
        let hash = LogEntry::compute_hash(clock, &self.identity, &payload, &refs, dot);
        let entry = LogEntry {
            hash,
            clock,
            identity: self.identity.clone(),
            payload,
            refs,
            dot,
        };
        self.entries.push(entry.clone());
        entry
    }

    /// The current heads: entries no other entry references.
    pub fn heads(&self) -> Vec<MerkleHash> {
        let mut heads: Vec<MerkleHash> = self.entries.iter().map(|e| e.hash).collect();
        for e in &self.entries {
            heads.retain(|h| !e.refs.contains(h));
        }
        heads
    }

    /// Referenced hashes with no corresponding entry — the "head hash didn't
    /// match" symptom of OrbitDB-4 after a partial sync.
    pub fn dangling_refs(&self) -> Vec<MerkleHash> {
        let mut missing = Vec::new();
        for e in &self.entries {
            for &r in &e.refs {
                if !self.entries.iter().any(|x| x.hash == r) && !missing.contains(&r) {
                    missing.push(r);
                }
            }
        }
        missing
    }

    /// Returns `true` if every reference resolves (the DAG is complete).
    pub fn verify(&self) -> bool {
        self.dangling_refs().is_empty()
    }

    /// Entries linearized by the configured sort order.
    pub fn entries(&self) -> Vec<&LogEntry> {
        let mut out: Vec<&LogEntry> = self.entries.iter().collect();
        match self.sort {
            LogSortOrder::ClockThenIdentity => out.sort_by(|a, b| {
                a.clock
                    .time
                    .cmp(&b.clock.time)
                    .then_with(|| a.identity.cmp(&b.identity))
                    .then_with(|| a.hash.cmp(&b.hash))
            }),
            // Stable sort by clock time only: equal clocks keep insertion
            // order, which differs between replicas.
            LogSortOrder::ClockOnly => out.sort_by_key(|e| e.clock.time),
        }
        out
    }

    /// Payloads in linearized order.
    pub fn values(&self) -> Vec<&Value> {
        self.entries().into_iter().map(|e| &e.payload).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the log has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by hash.
    pub fn entry(&self, hash: MerkleHash) -> Option<&LogEntry> {
        self.entries.iter().find(|e| e.hash == hash)
    }
}

impl DeltaSync for MerkleLog {
    type Op = MerkleLogOp;

    fn missing_since(&self, since: &VersionVector) -> Vec<MerkleLogOp> {
        self.entries
            .iter()
            .filter(|e| !since.contains(e.dot))
            .cloned()
            .collect()
    }

    fn apply_op(&mut self, op: &MerkleLogOp) {
        if self.entries.iter().any(|e| e.hash == op.hash) {
            self.ctx.add(op.dot);
            return; // duplicate: idempotent
        }
        if let Some(skew) = self.max_clock_skew {
            if op.clock.time > self.clock.time() + skew {
                // Poisoned clock: reject and halt progress on this entry.
                self.rejected += 1;
                return;
            }
        }
        self.ctx.add(op.dot);
        self.clock.observe(op.clock);
        self.entries.push(op.clone());
    }

    fn version(&self) -> &VersionVector {
        self.ctx.vector()
    }
}

impl StateCrdt for MerkleLog {
    fn merge(&mut self, other: &Self) {
        self.sync_from(other);
    }
}

impl CanonicalEncode for MerkleHash {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.0.encode_canonical(out);
    }
}

impl CanonicalEncode for LogEntry {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.hash.encode_canonical(out);
        self.clock.encode_canonical(out);
        self.identity.encode_canonical(out);
        self.payload.encode_canonical(out);
        self.refs.encode_canonical(out);
        self.dot.encode_canonical(out);
    }
}

impl CanonicalEncode for MerkleLog {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        // Entries are kept in arrival order and `LogSortOrder::ClockOnly`
        // makes reads depend on it, so the raw entry vector (not a sorted
        // view) is the faithful encoding; the clock, skew policy and
        // rejection count steer future appends.
        self.replica.encode_canonical(out);
        self.identity.encode_canonical(out);
        self.clock.encode_canonical(out);
        out.push(match self.sort {
            LogSortOrder::ClockThenIdentity => 0,
            LogSortOrder::ClockOnly => 1,
        });
        self.entries.encode_canonical(out);
        self.ctx.encode_canonical(out);
        self.max_clock_skew.encode_canonical(out);
        self.rejected.encode_canonical(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn append_builds_a_chain() {
        let mut log = MerkleLog::new(r(0), "alice");
        let e1 = log.append(Value::from(1));
        let e2 = log.append(Value::from(2));
        assert!(e1.refs.is_empty());
        assert_eq!(e2.refs, vec![e1.hash]);
        assert_eq!(log.heads(), vec![e2.hash]);
        assert!(log.verify());
    }

    #[test]
    fn join_unions_dags_and_merges_heads() {
        let mut a = MerkleLog::new(r(0), "alice");
        let mut b = MerkleLog::new(r(1), "bob");
        a.append(Value::from("a1"));
        b.append(Value::from("b1"));
        a.sync_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.heads().len(), 2, "two concurrent heads");
        // Appending on top of both heads converges them.
        let e = a.append(Value::from("merge"));
        assert_eq!(e.refs.len(), 2);
        assert_eq!(a.heads(), vec![e.hash]);
    }

    #[test]
    fn deterministic_sort_converges_on_identity_ties() {
        let mut a = MerkleLog::new(r(0), "same-id");
        let mut b = MerkleLog::new(r(1), "same-id");
        a.append(Value::from("from-a"));
        b.append(Value::from("from-b"));
        a.sync_from(&b);
        b.sync_from(&a);
        // Same clock time, same identity — but hash still breaks the tie.
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn clock_only_sort_diverges_on_ties() {
        // OrbitDB-1 distilled: equal clocks + insertion-order ties.
        let mut a = MerkleLog::new(r(0), "same-id");
        let mut b = MerkleLog::new(r(1), "same-id");
        a.set_sort_order(LogSortOrder::ClockOnly);
        b.set_sort_order(LogSortOrder::ClockOnly);
        let ea = a.append(Value::from("from-a"));
        let eb = b.append(Value::from("from-b"));
        // Cross-deliver in opposite orders.
        a.apply_op(&eb);
        b.apply_op(&ea);
        assert_eq!(ea.clock.time, eb.clock.time);
        assert_ne!(a.values(), b.values(), "insertion-order ties diverge");
    }

    #[test]
    fn skew_rejection_halts_progress() {
        let mut a = MerkleLog::new(r(0), "alice");
        let mut b = MerkleLog::new(r(1), "bob");
        b.set_max_clock_skew(Some(100));
        a.force_clock(1_000_000);
        let poisoned = a.append(Value::from("poison"));
        b.apply_op(&poisoned);
        assert_eq!(b.len(), 0);
        assert_eq!(b.rejected_count(), 1);
    }

    #[test]
    fn partial_sync_leaves_dangling_refs() {
        let mut a = MerkleLog::new(r(0), "alice");
        a.append(Value::from(1));
        let e2 = a.append(Value::from(2));
        let mut b = MerkleLog::new(r(1), "bob");
        // Deliver only the child: its ref dangles.
        b.apply_op(&e2);
        assert!(!b.verify());
        assert_eq!(b.dangling_refs().len(), 1);
    }

    #[test]
    fn redelivery_is_idempotent() {
        let mut a = MerkleLog::new(r(0), "alice");
        let e = a.append(Value::from(1));
        let mut b = MerkleLog::new(r(1), "bob");
        b.apply_op(&e);
        b.apply_op(&e);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn delta_sync_sends_only_missing() {
        let mut a = MerkleLog::new(r(0), "alice");
        a.append(Value::from(1));
        let mut b = MerkleLog::new(r(1), "bob");
        b.sync_from(&a);
        a.append(Value::from(2));
        let delta = a.missing_since(b.version());
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].payload, Value::from(2));
    }

    #[test]
    fn entry_lookup_by_hash() {
        let mut a = MerkleLog::new(r(0), "alice");
        let e = a.append(Value::from("x"));
        assert_eq!(a.entry(e.hash).unwrap().payload, Value::from("x"));
        assert!(a.entry(MerkleHash(0xdead)).is_none());
    }
}

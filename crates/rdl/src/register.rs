//! Last-write-wins and multi-value registers.

use std::fmt;

use er_pi_model::{CanonicalEncode, Dot, LamportTimestamp, ReplicaId, VersionVector};
use serde::{Deserialize, Serialize};

use crate::StateCrdt;

/// A last-write-wins register: the highest [`LamportTimestamp`] wins; the
/// replica id inside the timestamp deterministically breaks ties.
///
/// ```
/// use er_pi_model::{LamportTimestamp, ReplicaId};
/// use er_pi_rdl::{LwwRegister, StateCrdt};
///
/// let r0 = ReplicaId::new(0);
/// let r1 = ReplicaId::new(1);
/// let mut a = LwwRegister::new("initial", LamportTimestamp::new(0, r0));
/// let b = LwwRegister::new("newer", LamportTimestamp::new(5, r1));
/// a.merge(&b);
/// assert_eq!(*a.get(), "newer");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LwwRegister<T> {
    value: T,
    timestamp: LamportTimestamp,
}

impl<T> LwwRegister<T> {
    /// Creates a register holding `value` written at `timestamp`.
    pub fn new(value: T, timestamp: LamportTimestamp) -> Self {
        LwwRegister { value, timestamp }
    }

    /// The current value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// The timestamp of the current value.
    pub fn timestamp(&self) -> LamportTimestamp {
        self.timestamp
    }

    /// Overwrites the value if `timestamp` is newer than the stored one.
    /// Returns `true` if the write won.
    pub fn set(&mut self, value: T, timestamp: LamportTimestamp) -> bool {
        if timestamp > self.timestamp {
            self.value = value;
            self.timestamp = timestamp;
            true
        } else {
            false
        }
    }

    /// Consumes the register, returning the current value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T: Clone> StateCrdt for LwwRegister<T> {
    fn merge(&mut self, other: &Self) {
        if other.timestamp > self.timestamp {
            self.value = other.value.clone();
            self.timestamp = other.timestamp;
        }
    }
}

impl<T: fmt::Display> fmt::Display for LwwRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.value, self.timestamp)
    }
}

impl<T: CanonicalEncode> CanonicalEncode for LwwRegister<T> {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.value.encode_canonical(out);
        self.timestamp.encode_canonical(out);
    }
}

/// A multi-value register: concurrent writes are all retained and surfaced
/// to the application for resolution.
///
/// Each write is tagged with a [`Dot`] and the writer's causal context;
/// a write overwrites exactly the values it causally observed.
///
/// ```
/// use er_pi_model::ReplicaId;
/// use er_pi_rdl::{MvRegister, StateCrdt};
///
/// let mut a = MvRegister::new(ReplicaId::new(0));
/// let mut b = MvRegister::new(ReplicaId::new(1));
/// a.set("from A");
/// b.set("from B");
/// a.merge(&b);
/// // Concurrent writes conflict: both survive.
/// assert_eq!(a.values().len(), 2);
/// a.set("resolved");
/// assert_eq!(a.values(), vec![&"resolved"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MvRegister<T> {
    replica: ReplicaId,
    /// Live entries: `(dot, value)`.
    entries: Vec<(Dot, T)>,
    /// Everything this replica has causally observed.
    context: VersionVector,
}

impl<T> MvRegister<T> {
    /// Creates an empty register owned by `replica`.
    pub fn new(replica: ReplicaId) -> Self {
        MvRegister {
            replica,
            entries: Vec::new(),
            context: VersionVector::new(),
        }
    }

    /// The replica this handle mutates on behalf of.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Writes `value`, overwriting every currently visible value.
    pub fn set(&mut self, value: T) {
        let dot = self.context.increment(self.replica);
        self.entries.clear();
        self.entries.push((dot, value));
    }

    /// All currently visible values (more than one ⇒ unresolved conflict),
    /// in deterministic dot order.
    pub fn values(&self) -> Vec<&T> {
        let mut sorted: Vec<&(Dot, T)> = self.entries.iter().collect();
        sorted.sort_by_key(|(d, _)| *d);
        sorted.into_iter().map(|(_, v)| v).collect()
    }

    /// Returns `true` if concurrent writes are currently unresolved.
    pub fn is_conflicted(&self) -> bool {
        self.entries.len() > 1
    }

    /// Returns `true` if no write has happened yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<T: Clone + PartialEq> StateCrdt for MvRegister<T> {
    fn merge(&mut self, other: &Self) {
        // Keep my entries that other has not causally overwritten, plus
        // other's entries that I have not causally overwritten.
        let mine = std::mem::take(&mut self.entries);
        let mut merged: Vec<(Dot, T)> = mine
            .into_iter()
            .filter(|(d, _)| {
                // Survives if other still has it, or other never saw it.
                other.entries.iter().any(|(od, _)| od == d) || !other.context.contains(*d)
            })
            .collect();
        for (d, v) in &other.entries {
            let seen = merged.iter().any(|(md, _)| md == d);
            if !seen && !self.context.contains(*d) {
                merged.push((*d, v.clone()));
            }
        }
        self.entries = merged;
        self.context.merge(&other.context);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn ts(t: u64, rep: u16) -> LamportTimestamp {
        LamportTimestamp::new(t, r(rep))
    }

    #[test]
    fn lww_set_respects_timestamps() {
        let mut reg = LwwRegister::new(0, ts(1, 0));
        assert!(reg.set(1, ts(2, 0)));
        assert!(!reg.set(99, ts(1, 0)));
        assert_eq!(*reg.get(), 1);
        assert_eq!(reg.timestamp(), ts(2, 0));
    }

    #[test]
    fn lww_equal_time_ties_break_by_replica() {
        // The Roshi-2 bug class: equal timestamps must still resolve
        // deterministically.
        let mut a = LwwRegister::new("a", ts(5, 0));
        let b = LwwRegister::new("b", ts(5, 1));
        a.merge(&b);
        assert_eq!(*a.get(), "b"); // higher replica id wins the tie

        let mut b2 = LwwRegister::new("b", ts(5, 1));
        b2.merge(&LwwRegister::new("a", ts(5, 0)));
        assert_eq!(*b2.get(), "b"); // same winner from the other side
    }

    #[test]
    fn lww_merge_is_idempotent_and_commutative() {
        let a = LwwRegister::new(1, ts(3, 0));
        let b = LwwRegister::new(2, ts(4, 1));
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.merged(&ab), ab);
    }

    #[test]
    fn mv_concurrent_writes_both_survive() {
        let mut a = MvRegister::new(r(0));
        let mut b = MvRegister::new(r(1));
        a.set(1);
        b.set(2);
        let merged = a.merged(&b);
        assert!(merged.is_conflicted());
        assert_eq!(merged.values(), vec![&1, &2]);
    }

    #[test]
    fn mv_causal_overwrite_wins() {
        let mut a = MvRegister::new(r(0));
        a.set(1);
        let mut b = MvRegister::new(r(1));
        b.merge(&a); // b observes a's write
        b.set(2); // causally after: overwrites
        a.merge(&b);
        assert!(!a.is_conflicted());
        assert_eq!(a.values(), vec![&2]);
    }

    #[test]
    fn mv_merge_idempotent() {
        let mut a = MvRegister::new(r(0));
        a.set(7);
        let before = a.clone();
        a.merge(&before.clone());
        assert_eq!(a, before);
    }

    #[test]
    fn mv_set_resolves_conflict() {
        let mut a = MvRegister::new(r(0));
        let mut b = MvRegister::new(r(1));
        a.set(1);
        b.set(2);
        a.merge(&b);
        assert!(a.is_conflicted());
        a.set(3);
        assert_eq!(a.values(), vec![&3]);
        // The resolution propagates.
        b.merge(&a);
        assert_eq!(b.values(), vec![&3]);
    }

    #[test]
    fn mv_empty_register() {
        let a: MvRegister<i32> = MvRegister::new(r(0));
        assert!(a.is_empty());
        assert!(a.values().is_empty());
    }
}

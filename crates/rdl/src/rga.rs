//! A replicated growable array (RGA) — the list CRDT, with move support.
//!
//! This is the data structure behind misconceptions #2 (element order) and
//! #3 (move duplication) of the paper's §6.2, and behind the Yorkie-1 bug
//! (`Array.MoveAfter` divergence, issue #676).

use er_pi_model::{
    CanonicalEncode, Dot, DotContext, LamportClock, LamportTimestamp, ReplicaId, VersionVector,
};
use serde::{Deserialize, Serialize};

use crate::{DeltaSync, StateCrdt};

/// The unique, stable identity of one list element: the Lamport timestamp of
/// the insert that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElementId(pub LamportTimestamp);

impl std::fmt::Display for ElementId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One replicated operation of an [`Rga`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RgaOp<T> {
    /// Inserts `value` with identity `id` after element `after`
    /// (`None` = list head).
    Insert {
        /// Identity of the new element.
        id: ElementId,
        /// Predecessor element, or `None` for the head.
        after: Option<ElementId>,
        /// Element payload.
        value: T,
        /// Delivery-tracking tag.
        dot: Dot,
    },
    /// Tombstones element `id`.
    Delete {
        /// Identity of the deleted element.
        id: ElementId,
        /// Delivery-tracking tag.
        dot: Dot,
    },
    /// Relocates element `id` after `after`; last-writer-wins on `moved_at`.
    ///
    /// This is the *correct* move primitive ("designate a winning position",
    /// Kleppmann 2020). The defective alternative — delete + fresh insert —
    /// is what applications write when they hold misconception #3.
    Move {
        /// Identity of the moved element (stable across moves).
        id: ElementId,
        /// New predecessor, or `None` for the head.
        after: Option<ElementId>,
        /// Timestamp of the move; the highest one wins.
        moved_at: LamportTimestamp,
        /// Delivery-tracking tag.
        dot: Dot,
    },
}

impl<T> RgaOp<T> {
    /// The operation's delivery-tracking tag.
    pub fn dot(&self) -> Dot {
        match self {
            RgaOp::Insert { dot, .. } | RgaOp::Delete { dot, .. } | RgaOp::Move { dot, .. } => *dot,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Node<T> {
    id: ElementId,
    /// Position identity: insert id initially, the winning move timestamp
    /// after relocation. Concurrent siblings order by descending `pos_id`.
    pos_id: LamportTimestamp,
    value: T,
    deleted: bool,
    /// Timestamp of the winning move applied to this node, if any.
    moved_at: Option<LamportTimestamp>,
}

/// A replicated growable array: a list CRDT with insert, delete, and move.
///
/// Convergent under arbitrary (including out-of-causal-order) delivery:
/// operations whose referenced elements have not arrived yet are buffered
/// and integrated once their dependencies appear.
///
/// ```
/// use er_pi_model::ReplicaId;
/// use er_pi_rdl::{DeltaSync, Rga};
///
/// let mut a = Rga::new(ReplicaId::new(0));
/// let mut b = Rga::new(ReplicaId::new(1));
/// a.push("x");
/// a.push("y");
/// b.sync_from(&a);
/// assert_eq!(b.values(), vec![&"x", &"y"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rga<T> {
    replica: ReplicaId,
    clock: LamportClock,
    nodes: Vec<Node<T>>,
    ctx: DotContext,
    log: Vec<RgaOp<T>>,
    pending: Vec<RgaOp<T>>,
}

impl<T: Clone + PartialEq> Rga<T> {
    /// Creates an empty list owned by `replica`.
    pub fn new(replica: ReplicaId) -> Self {
        Rga {
            replica,
            clock: LamportClock::new(replica),
            nodes: Vec::new(),
            ctx: DotContext::new(),
            log: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// The replica this handle mutates on behalf of.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Number of visible (non-tombstoned) elements.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| !n.deleted).count()
    }

    /// Returns `true` if no element is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visible values in list order.
    pub fn values(&self) -> Vec<&T> {
        self.nodes
            .iter()
            .filter(|n| !n.deleted)
            .map(|n| &n.value)
            .collect()
    }

    /// The value at visible index `idx`.
    pub fn get(&self, idx: usize) -> Option<&T> {
        self.nodes
            .iter()
            .filter(|n| !n.deleted)
            .nth(idx)
            .map(|n| &n.value)
    }

    /// The stable identity of the element at visible index `idx`.
    pub fn id_at(&self, idx: usize) -> Option<ElementId> {
        self.nodes
            .iter()
            .filter(|n| !n.deleted)
            .nth(idx)
            .map(|n| n.id)
    }

    /// The visible index of element `id`, if present and visible.
    pub fn index_of(&self, id: ElementId) -> Option<usize> {
        self.nodes
            .iter()
            .filter(|n| !n.deleted)
            .position(|n| n.id == id)
    }

    /// Appends `value` at the end of the list.
    pub fn push(&mut self, value: T) -> RgaOp<T> {
        let after = self.nodes.iter().rev().find(|n| !n.deleted).map(|n| n.id);
        self.insert_after(after, value)
    }

    /// Inserts `value` at visible index `idx` (0 = head).
    ///
    /// # Panics
    ///
    /// Panics if `idx > len`.
    pub fn insert(&mut self, idx: usize, value: T) -> RgaOp<T> {
        assert!(
            idx <= self.len(),
            "index {idx} out of bounds (len {})",
            self.len()
        );
        let after = if idx == 0 { None } else { self.id_at(idx - 1) };
        self.insert_after(after, value)
    }

    /// Inserts `value` after element `after` (`None` = head).
    pub fn insert_after(&mut self, after: Option<ElementId>, value: T) -> RgaOp<T> {
        let id = ElementId(self.clock.tick());
        let dot = self.ctx.next_dot(self.replica);
        let op = RgaOp::Insert {
            id,
            after,
            value,
            dot,
        };
        self.integrate(&op);
        self.log.push(op.clone());
        op
    }

    /// Tombstones the element at visible index `idx`. Returns `None` (a
    /// failed op) if the index is out of bounds.
    pub fn delete(&mut self, idx: usize) -> Option<RgaOp<T>> {
        let id = self.id_at(idx)?;
        self.delete_id(id)
    }

    /// Tombstones element `id`. Returns `None` if absent or already deleted.
    pub fn delete_id(&mut self, id: ElementId) -> Option<RgaOp<T>> {
        let node = self.nodes.iter().find(|n| n.id == id && !n.deleted)?;
        let _ = node;
        let dot = self.ctx.next_dot(self.replica);
        let op = RgaOp::Delete { id, dot };
        self.integrate(&op);
        self.log.push(op.clone());
        Some(op)
    }

    /// Moves the element at visible index `from` to sit after the element
    /// currently preceding visible index `to`, using the **correct** move
    /// primitive (stable identity, LWW position). Returns `None` if either
    /// index is out of bounds.
    pub fn move_item(&mut self, from: usize, to: usize) -> Option<RgaOp<T>> {
        let id = self.id_at(from)?;
        if to > self.len() {
            return None;
        }
        let after = if to == 0 {
            None
        } else {
            // Position `to` is interpreted against the list *without* the
            // moved element, matching typical moveItem APIs.
            let mut visible: Vec<ElementId> = self
                .nodes
                .iter()
                .filter(|n| !n.deleted)
                .map(|n| n.id)
                .collect();
            visible.retain(|&v| v != id);
            if to == 0 {
                None
            } else {
                visible.get(to - 1).copied()
            }
        };
        self.move_after_id(id, after)
    }

    /// Moves element `id` to sit after `after` (`None` = head).
    pub fn move_after_id(&mut self, id: ElementId, after: Option<ElementId>) -> Option<RgaOp<T>> {
        if !self.nodes.iter().any(|n| n.id == id && !n.deleted) {
            return None;
        }
        let moved_at = self.clock.tick();
        let dot = self.ctx.next_dot(self.replica);
        let op = RgaOp::Move {
            id,
            after,
            moved_at,
            dot,
        };
        self.integrate(&op);
        self.log.push(op.clone());
        Some(op)
    }

    /// The *defective* move an application with misconception #3 writes:
    /// delete + re-insert as a **new** element. Under concurrent moves of
    /// the same element this duplicates it, because each replica mints a
    /// fresh identity whose tombstone the other never observes.
    pub fn move_naive(&mut self, from: usize, to: usize) -> Option<(RgaOp<T>, RgaOp<T>)> {
        let value = self.get(from)?.clone();
        let del = self.delete(from)?;
        let to = to.min(self.len());
        let ins = self.insert(to, value);
        Some((del, ins))
    }

    fn node_pos(&self, id: ElementId) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }

    /// RGA integration: place a node with position identity `pos_id` after
    /// `after`, skipping concurrent siblings with greater `pos_id`.
    fn integration_index(
        &self,
        after: Option<ElementId>,
        pos_id: LamportTimestamp,
    ) -> Option<usize> {
        let mut idx = match after {
            None => 0,
            Some(p) => self.node_pos(p)? + 1,
        };
        while idx < self.nodes.len() && self.nodes[idx].pos_id > pos_id {
            idx += 1;
        }
        Some(idx)
    }

    /// Attempts to apply `op`; returns `false` if a referenced element has
    /// not arrived yet (op goes to the pending buffer).
    fn integrate(&mut self, op: &RgaOp<T>) -> bool {
        match op {
            RgaOp::Insert {
                id, after, value, ..
            } => {
                if self.nodes.iter().any(|n| n.id == *id) {
                    return true; // duplicate insert: idempotent
                }
                let Some(idx) = self.integration_index(*after, id.0) else {
                    return false;
                };
                self.clock.observe(id.0);
                self.nodes.insert(
                    idx,
                    Node {
                        id: *id,
                        pos_id: id.0,
                        value: value.clone(),
                        deleted: false,
                        moved_at: None,
                    },
                );
                true
            }
            RgaOp::Delete { id, .. } => {
                let Some(pos) = self.node_pos(*id) else {
                    return false;
                };
                self.nodes[pos].deleted = true;
                true
            }
            RgaOp::Move {
                id,
                after,
                moved_at,
                ..
            } => {
                let Some(pos) = self.node_pos(*id) else {
                    return false;
                };
                if after.is_some() && self.node_pos(after.unwrap()).is_none() {
                    return false;
                }
                if self.nodes[pos].moved_at.is_some_and(|m| m >= *moved_at) {
                    return true; // an equal-or-newer move already won
                }
                self.clock.observe(*moved_at);
                let mut node = self.nodes.remove(pos);
                node.moved_at = Some(*moved_at);
                node.pos_id = *moved_at;
                let idx = self
                    .integration_index(*after, *moved_at)
                    .expect("target checked above");
                self.nodes.insert(idx, node);
                true
            }
        }
    }

    /// Drains the pending buffer, applying every op whose dependencies have
    /// arrived; repeats until a fixpoint.
    fn flush_pending(&mut self) {
        loop {
            let mut progressed = false;
            let pending = std::mem::take(&mut self.pending);
            for op in pending {
                if self.integrate(&op) {
                    progressed = true;
                    self.log.push(op);
                } else {
                    self.pending.push(op);
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

impl<T: Clone + PartialEq> DeltaSync for Rga<T> {
    type Op = RgaOp<T>;

    fn missing_since(&self, since: &VersionVector) -> Vec<RgaOp<T>> {
        // Include still-pending ops too: the receiver may have their deps.
        self.log
            .iter()
            .chain(self.pending.iter())
            .filter(|op| !since.contains(op.dot()))
            .cloned()
            .collect()
    }

    fn apply_op(&mut self, op: &RgaOp<T>) {
        if self.ctx.contains(op.dot()) {
            return;
        }
        self.ctx.add(op.dot());
        if self.integrate(op) {
            self.log.push(op.clone());
            self.flush_pending();
        } else {
            self.pending.push(op.clone());
        }
    }

    fn version(&self) -> &VersionVector {
        self.ctx.vector()
    }
}

impl<T: Clone + PartialEq> StateCrdt for Rga<T> {
    fn merge(&mut self, other: &Self) {
        self.sync_from(other);
    }
}

impl CanonicalEncode for ElementId {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        self.0.encode_canonical(out);
    }
}

impl<T: CanonicalEncode> CanonicalEncode for RgaOp<T> {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        match self {
            RgaOp::Insert {
                id,
                after,
                value,
                dot,
            } => {
                out.push(0);
                id.encode_canonical(out);
                after.encode_canonical(out);
                value.encode_canonical(out);
                dot.encode_canonical(out);
            }
            RgaOp::Delete { id, dot } => {
                out.push(1);
                id.encode_canonical(out);
                dot.encode_canonical(out);
            }
            RgaOp::Move {
                id,
                after,
                moved_at,
                dot,
            } => {
                out.push(2);
                id.encode_canonical(out);
                after.encode_canonical(out);
                moved_at.encode_canonical(out);
                dot.encode_canonical(out);
            }
        }
    }
}

impl<T: CanonicalEncode> CanonicalEncode for Rga<T> {
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        // The node vector *is* the linearized list (tombstones included);
        // pending buffers ops whose dependencies have not arrived, and the
        // dot context is the delivery filter — all three steer future
        // integrations.
        self.replica.encode_canonical(out);
        self.clock.encode_canonical(out);
        (self.nodes.len() as u64).encode_canonical(out);
        for node in &self.nodes {
            node.id.encode_canonical(out);
            node.pos_id.encode_canonical(out);
            node.value.encode_canonical(out);
            node.deleted.encode_canonical(out);
            node.moved_at.encode_canonical(out);
        }
        self.ctx.encode_canonical(out);
        self.log.encode_canonical(out);
        self.pending.encode_canonical(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn push_and_get() {
        let mut l = Rga::new(r(0));
        l.push(1);
        l.push(2);
        l.insert(1, 99);
        assert_eq!(l.values(), vec![&1, &99, &2]);
        assert_eq!(l.get(1), Some(&99));
        assert_eq!(l.get(3), None);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn delete_tombstones() {
        let mut l = Rga::new(r(0));
        l.push("a");
        l.push("b");
        assert!(l.delete(0).is_some());
        assert_eq!(l.values(), vec![&"b"]);
        assert!(l.delete(5).is_none(), "out of bounds delete is a failed op");
    }

    #[test]
    fn sync_converges_simple() {
        let mut a = Rga::new(r(0));
        let mut b = Rga::new(r(1));
        a.push(1);
        a.push(2);
        b.sync_from(&a);
        b.delete(0);
        a.sync_from(&b);
        assert_eq!(a.values(), b.values());
        assert_eq!(a.values(), vec![&2]);
    }

    #[test]
    fn concurrent_inserts_converge_to_same_order() {
        let mut a = Rga::new(r(0));
        let mut b = Rga::new(r(1));
        a.push("base");
        b.sync_from(&a);
        // Both insert at the head concurrently.
        a.insert(0, "from-a");
        b.insert(0, "from-b");
        a.sync_from(&b);
        b.sync_from(&a);
        assert_eq!(a.values(), b.values());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn out_of_order_delivery_is_buffered() {
        let mut a = Rga::new(r(0));
        let op1 = a.push(1);
        let op2 = a.insert_after(
            match &op1 {
                RgaOp::Insert { id, .. } => Some(*id),
                _ => unreachable!(),
            },
            2,
        );
        let mut b = Rga::new(r(1));
        // Deliver the child before the parent.
        b.apply_op(&op2);
        assert_eq!(b.len(), 0, "child is pending until parent arrives");
        b.apply_op(&op1);
        assert_eq!(b.values(), vec![&1, &2]);
    }

    #[test]
    fn correct_move_does_not_duplicate_under_concurrency() {
        let mut a = Rga::new(r(0));
        a.push("x");
        a.push("y");
        a.push("z");
        let mut b = Rga::new(r(1));
        b.sync_from(&a);
        // Concurrent moves of "x" to different positions.
        a.move_item(0, 2);
        b.move_item(0, 1);
        a.sync_from(&b);
        b.sync_from(&a);
        assert_eq!(a.values(), b.values(), "replicas must converge");
        let xs = a.values().into_iter().filter(|v| **v == "x").count();
        assert_eq!(xs, 1, "one winner position, no duplication");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn naive_move_duplicates_under_concurrency() {
        // Misconception #3 reproduced at the library level.
        let mut a = Rga::new(r(0));
        a.push("x");
        a.push("y");
        a.push("z");
        let mut b = Rga::new(r(1));
        b.sync_from(&a);
        a.move_naive(0, 2);
        b.move_naive(0, 1);
        a.sync_from(&b);
        b.sync_from(&a);
        assert_eq!(a.values(), b.values());
        let xs = a.values().into_iter().filter(|v| **v == "x").count();
        assert_eq!(xs, 2, "delete+insert move duplicates the element");
    }

    #[test]
    fn move_lww_highest_timestamp_wins() {
        let mut a = Rga::new(r(0));
        a.push(10);
        a.push(20);
        a.push(30);
        let mut b = Rga::new(r(1));
        b.sync_from(&a);
        // b's clock is ahead after extra activity: its move wins.
        b.push(40);
        b.delete(3);
        let id = a.id_at(0).unwrap();
        a.move_after_id(id, a.id_at(2)); // a: move 10 after 30
        b.move_after_id(id, None); // b: move 10 to head (later ts)
        a.sync_from(&b);
        b.sync_from(&a);
        assert_eq!(a.values(), b.values());
        assert_eq!(a.values()[0], &10, "the later move (b's) wins");
    }

    #[test]
    fn redelivery_is_idempotent() {
        let mut a = Rga::new(r(0));
        let op = a.push(1);
        let mut b = Rga::new(r(1));
        b.apply_op(&op);
        b.apply_op(&op);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn index_of_and_id_at_roundtrip() {
        let mut l = Rga::new(r(0));
        l.push("a");
        l.push("b");
        let id = l.id_at(1).unwrap();
        assert_eq!(l.index_of(id), Some(1));
        l.delete(0);
        assert_eq!(l.index_of(id), Some(0));
    }

    #[test]
    fn three_replicas_converge_via_pairwise_sync() {
        let mut a = Rga::new(r(0));
        let mut b = Rga::new(r(1));
        let mut c = Rga::new(r(2));
        a.push(1);
        b.push(2);
        c.push(3);
        // Ring sync twice.
        for _ in 0..2 {
            let (sa, sb, sc) = (a.clone(), b.clone(), c.clone());
            b.sync_from(&sa);
            c.sync_from(&sb);
            a.sync_from(&sc);
        }
        a.sync_from(&b);
        a.sync_from(&c);
        b.sync_from(&a);
        c.sync_from(&a);
        assert_eq!(a.values(), b.values());
        assert_eq!(b.values(), c.values());
        assert_eq!(a.len(), 3);
    }
}

//! Commutativity metadata for the RDL type families.
//!
//! The static analysis pass (`er-pi-analysis`) classifies every pair of
//! recorded update events as *commuting* or *conflicting*. The library is
//! the right owner of that knowledge: whether two operations commute is a
//! property of the data type's semantics, not of any particular workload.
//! This module captures, per type family, the commutativity table the
//! analysis consults.
//!
//! The tables are deliberately conservative: when an argument needed for a
//! disjointness judgement is unknown (e.g. a list position that the proxy
//! could not extract), the pair is reported as conflicting. Conservatism
//! only costs pruning opportunities; it never merges interleavings that
//! could differ.
//!
//! ```
//! use er_pi_model::Value;
//! use er_pi_rdl::{CrdtType, OpKind, OpProfile};
//!
//! let inc = OpProfile::new(CrdtType::PnCounter, OpKind::Inc);
//! let dec = OpProfile::new(CrdtType::PnCounter, OpKind::Dec);
//! assert!(inc.commutes_with(&dec).is_none(), "counter ops always commute");
//!
//! let add = OpProfile::new(CrdtType::OrSet, OpKind::Add { element: Some(Value::from("x")) });
//! let del = OpProfile::new(CrdtType::OrSet, OpKind::Remove { element: Some(Value::from("x")) });
//! assert!(add.commutes_with(&del).is_some(), "add/remove of one element conflict");
//! ```

use er_pi_model::Value;

/// The RDL type families whose operations the analysis can classify.
///
/// One variant per family of `er-pi-rdl` types; operations on *different*
/// families always commute because they act on disjoint objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrdtType {
    /// [`GCounter`](crate::GCounter) — grow-only counter.
    GCounter,
    /// [`PnCounter`](crate::PnCounter) — increment/decrement counter.
    PnCounter,
    /// [`LwwRegister`](crate::LwwRegister) — last-writer-wins register.
    LwwRegister,
    /// [`MvRegister`](crate::MvRegister) — multi-value register.
    MvRegister,
    /// [`GSet`](crate::GSet) — grow-only set.
    GSet,
    /// [`TwoPhaseSet`](crate::TwoPhaseSet) — add/remove-once set.
    TwoPhaseSet,
    /// [`OrSet`](crate::OrSet) — observed-remove set.
    OrSet,
    /// [`LwwElementSet`](crate::LwwElementSet) — timestamped add/remove set.
    LwwElementSet,
    /// [`Rga`](crate::Rga) — replicated growable array (list).
    Rga,
    /// [`LwwMap`](crate::LwwMap) — last-writer-wins map.
    LwwMap,
    /// [`OrMap`](crate::OrMap) — observed-remove map.
    OrMap,
    /// [`LwwTimeSeries`](crate::LwwTimeSeries) — Roshi-style scored set.
    LwwTimeSeries,
    /// [`MerkleLog`](crate::MerkleLog) — OrbitDB-style append log.
    MerkleLog,
    /// [`JsonDoc`](crate::JsonDoc) — Yorkie-style JSON document.
    JsonDoc,
}

/// The abstract shape of one intercepted operation, as far as commutativity
/// is concerned.
///
/// `None` arguments mean "statically unknown" and make every judgement that
/// needs them conservative (conflicting).
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Counter increment.
    Inc,
    /// Counter decrement.
    Dec,
    /// Register / map / document write, keyed when the target is keyed.
    Write {
        /// Register key, map key, or document path.
        key: Option<Value>,
    },
    /// Set insertion (also time-series insertion, keyed by member).
    Add {
        /// The inserted element.
        element: Option<Value>,
    },
    /// Set removal (also map key removal and time-series deletion).
    Remove {
        /// The removed element or key.
        element: Option<Value>,
    },
    /// Sequence insertion at a position.
    Insert {
        /// Insertion index.
        position: Option<i64>,
    },
    /// Sequence deletion at a position.
    Delete {
        /// Deletion index.
        position: Option<i64>,
    },
    /// Sequence move.
    Move {
        /// `true` for a move primitive with CRDT support; `false` for the
        /// delete+insert reimplementation (Table 2's misconception #3).
        safe: bool,
    },
    /// Log append.
    Append,
    /// Creation of an item under a locally computed sequential identifier
    /// (Table 2's misconception #4).
    MintId,
    /// Pure observation of the object (query, page assembly, …).
    Read,
}

/// One operation's commutativity-relevant profile: which type family it
/// touches and what it does to it.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// The type family the operation targets.
    pub crdt: CrdtType,
    /// The abstract action.
    pub kind: OpKind,
}

impl OpProfile {
    /// Creates a profile.
    pub fn new(crdt: CrdtType, kind: OpKind) -> Self {
        OpProfile { crdt, kind }
    }

    /// Consults the per-type commutativity table: returns `None` when the
    /// two operations commute, or `Some(reason)` naming the conflict.
    ///
    /// The relation is symmetric: `a.commutes_with(b)` and
    /// `b.commutes_with(a)` agree on commute-vs-conflict.
    pub fn commutes_with(&self, other: &OpProfile) -> Option<&'static str> {
        if self.crdt != other.crdt {
            return None; // disjoint objects always commute
        }
        conflict(self.crdt, &self.kind, &other.kind)
            .or_else(|| conflict(self.crdt, &other.kind, &self.kind))
    }
}

/// Returns `true` when both values are known and distinct — the only case
/// where a keyed/element-wise disjointness argument is allowed.
fn known_distinct(a: &Option<Value>, b: &Option<Value>) -> bool {
    matches!((a, b), (Some(x), Some(y)) if x != y)
}

fn known_distinct_pos(a: &Option<i64>, b: &Option<i64>) -> bool {
    matches!((a, b), (Some(x), Some(y)) if x != y)
}

/// The one-directional conflict table; [`OpProfile::commutes_with`]
/// symmetrizes it.
fn conflict(crdt: CrdtType, a: &OpKind, b: &OpKind) -> Option<&'static str> {
    use OpKind::*;
    // Reads conflict with every mutation of the same object: the observed
    // value depends on whether the mutation ran first.
    if matches!(a, Read) {
        return match b {
            Read => None,
            _ => Some("observation does not commute with a mutation"),
        };
    }
    match crdt {
        // Counter increments and decrements commute unconditionally.
        CrdtType::GCounter | CrdtType::PnCounter => match (a, b) {
            (Inc | Dec, Inc | Dec) => None,
            _ => Some("unsupported counter operation"),
        },
        // Grow-only sets: adds commute, even of the same element.
        CrdtType::GSet => match (a, b) {
            (Add { .. }, Add { .. }) => None,
            _ => Some("unsupported grow-only set operation"),
        },
        // Observed-remove flavoured sets: adds commute (fresh tags), removes
        // commute (both drop the observed tags), but an add and a remove of
        // the same element race — remove-before-add and add-before-remove
        // leave different states.
        CrdtType::OrSet | CrdtType::TwoPhaseSet | CrdtType::LwwElementSet | CrdtType::OrMap => {
            match (a, b) {
                (Add { .. }, Add { .. }) if crdt != CrdtType::LwwElementSet => None,
                (Add { element: x }, Add { element: y }) => {
                    // LWW element sets tie-break equal timestamps per
                    // element: same-element adds conflict.
                    if known_distinct(x, y) {
                        None
                    } else {
                        Some("same-element LWW adds tie-break on timestamps")
                    }
                }
                (Remove { .. }, Remove { .. }) => None,
                (Add { element: x }, Remove { element: y })
                | (Remove { element: x }, Add { element: y }) => {
                    if known_distinct(x, y) {
                        None
                    } else {
                        Some("add and remove of one element race")
                    }
                }
                (Write { key: x }, Write { key: y })
                | (Write { key: x }, Remove { element: y })
                | (Remove { element: x }, Write { key: y }) => {
                    if known_distinct(x, y) {
                        None
                    } else {
                        Some("same-key map updates race")
                    }
                }
                (MintId, _) | (_, MintId) => {
                    Some("sequential-ID creation reads a non-replicated maximum")
                }
                _ => Some("unsupported set operation"),
            }
        }
        // LWW registers: concurrent writes with equal timestamps resolve by
        // tie-break, so write/write conflicts unless keyed and disjoint.
        CrdtType::LwwRegister | CrdtType::MvRegister | CrdtType::JsonDoc => match (a, b) {
            (Write { key: x }, Write { key: y }) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("register writes tie-break on equal timestamps")
                }
            }
            (Write { key: x }, Remove { element: y })
            | (Remove { element: x }, Write { key: y }) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("write and delete of one path race")
                }
            }
            (Remove { .. }, Remove { .. }) => None,
            _ => Some("unsupported register operation"),
        },
        // LWW maps: keyed writes/removes commute iff keys are known
        // disjoint.
        CrdtType::LwwMap => match (a, b) {
            (
                Write { key: x } | Remove { element: x },
                Write { key: y } | Remove { element: y },
            ) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("same-key map updates race")
                }
            }
            _ => Some("unsupported map operation"),
        },
        // Sequences: inserts at overlapping (or unknown) positions
        // conflict; deletions and moves shift indices, so any combination
        // involving them conflicts, and the delete+insert move
        // reimplementation conflicts even with itself.
        CrdtType::Rga => match (a, b) {
            (Insert { position: x }, Insert { position: y }) => {
                if known_distinct_pos(x, y) {
                    None
                } else {
                    Some("inserts at overlapping list positions race")
                }
            }
            (Delete { .. } | Move { .. }, _) | (_, Delete { .. } | Move { .. }) => {
                Some("index-shifting list operation")
            }
            _ => Some("unsupported sequence operation"),
        },
        // Scored sets (Roshi): per-member LWW semantics.
        CrdtType::LwwTimeSeries => match (a, b) {
            (
                Add { element: x } | Remove { element: x },
                Add { element: y } | Remove { element: y },
            ) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("same-member scored updates tie-break on timestamps")
                }
            }
            _ => Some("unsupported time-series operation"),
        },
        // Append logs: the log order itself is observable state, so appends
        // never commute.
        CrdtType::MerkleLog => Some("log appends are order-observable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(crdt: CrdtType, kind: OpKind) -> OpProfile {
        OpProfile::new(crdt, kind)
    }

    #[test]
    fn different_families_always_commute() {
        let inc = p(CrdtType::PnCounter, OpKind::Inc);
        let app = p(CrdtType::MerkleLog, OpKind::Append);
        assert!(inc.commutes_with(&app).is_none());
    }

    #[test]
    fn counters_commute() {
        let inc = p(CrdtType::PnCounter, OpKind::Inc);
        let dec = p(CrdtType::PnCounter, OpKind::Dec);
        assert!(inc.commutes_with(&inc).is_none());
        assert!(inc.commutes_with(&dec).is_none());
        let ginc = p(CrdtType::GCounter, OpKind::Inc);
        assert!(ginc.commutes_with(&ginc).is_none());
    }

    #[test]
    fn orset_add_remove_same_element_conflict() {
        let add = |e: &str| {
            p(
                CrdtType::OrSet,
                OpKind::Add {
                    element: Some(Value::from(e)),
                },
            )
        };
        let del = |e: &str| {
            p(
                CrdtType::OrSet,
                OpKind::Remove {
                    element: Some(Value::from(e)),
                },
            )
        };
        assert!(add("x").commutes_with(&add("x")).is_none());
        assert!(add("x").commutes_with(&del("x")).is_some());
        assert!(del("x").commutes_with(&add("x")).is_some(), "symmetric");
        assert!(add("x").commutes_with(&del("y")).is_none());
        assert!(del("x").commutes_with(&del("x")).is_none());
    }

    #[test]
    fn unknown_elements_are_conservative() {
        let add = p(CrdtType::OrSet, OpKind::Add { element: None });
        let del = p(
            CrdtType::OrSet,
            OpKind::Remove {
                element: Some(Value::from("y")),
            },
        );
        assert!(
            add.commutes_with(&del).is_some(),
            "unknown element must conflict"
        );
    }

    #[test]
    fn rga_inserts_conflict_only_when_overlapping() {
        let ins = |i: i64| p(CrdtType::Rga, OpKind::Insert { position: Some(i) });
        assert!(ins(0).commutes_with(&ins(0)).is_some());
        assert!(ins(0).commutes_with(&ins(3)).is_none());
        let unknown = p(CrdtType::Rga, OpKind::Insert { position: None });
        assert!(unknown.commutes_with(&ins(3)).is_some());
    }

    #[test]
    fn rga_moves_and_deletes_conflict_with_everything() {
        let mv = p(CrdtType::Rga, OpKind::Move { safe: true });
        let ins = p(CrdtType::Rga, OpKind::Insert { position: Some(0) });
        let del = p(CrdtType::Rga, OpKind::Delete { position: Some(4) });
        assert!(mv.commutes_with(&mv).is_some());
        assert!(mv.commutes_with(&ins).is_some());
        assert!(del.commutes_with(&ins).is_some());
        assert!(del.commutes_with(&del).is_some());
    }

    #[test]
    fn lww_writes_conflict_unless_keyed_disjoint() {
        let w = |k: i64| {
            p(
                CrdtType::LwwMap,
                OpKind::Write {
                    key: Some(Value::from(k)),
                },
            )
        };
        assert!(w(1).commutes_with(&w(1)).is_some());
        assert!(w(1).commutes_with(&w(2)).is_none());
        let unkeyed = p(CrdtType::LwwRegister, OpKind::Write { key: None });
        assert!(
            unkeyed.commutes_with(&unkeyed).is_some(),
            "equal-timestamp tie-break"
        );
        let doc = |k: &str| {
            p(
                CrdtType::JsonDoc,
                OpKind::Write {
                    key: Some(Value::from(k)),
                },
            )
        };
        assert!(doc("a").commutes_with(&doc("b")).is_none());
        assert!(doc("a").commutes_with(&doc("a")).is_some());
    }

    #[test]
    fn log_appends_never_commute() {
        let app = p(CrdtType::MerkleLog, OpKind::Append);
        assert!(app.commutes_with(&app).is_some());
    }

    #[test]
    fn mint_id_conflicts_with_itself() {
        let mint = p(CrdtType::OrMap, OpKind::MintId);
        assert!(mint.commutes_with(&mint).is_some());
    }

    #[test]
    fn reads_conflict_with_writes_but_not_reads() {
        let read = p(CrdtType::LwwTimeSeries, OpKind::Read);
        let add = p(
            CrdtType::LwwTimeSeries,
            OpKind::Add {
                element: Some(Value::from("m")),
            },
        );
        assert!(read.commutes_with(&read).is_none());
        assert!(read.commutes_with(&add).is_some());
        assert!(add.commutes_with(&read).is_some());
    }

    #[test]
    fn timeseries_same_member_conflicts() {
        let add = |m: &str| {
            p(
                CrdtType::LwwTimeSeries,
                OpKind::Add {
                    element: Some(Value::from(m)),
                },
            )
        };
        let del = |m: &str| {
            p(
                CrdtType::LwwTimeSeries,
                OpKind::Remove {
                    element: Some(Value::from(m)),
                },
            )
        };
        assert!(add("a").commutes_with(&add("b")).is_none());
        assert!(add("a").commutes_with(&add("a")).is_some());
        assert!(add("a").commutes_with(&del("a")).is_some());
        assert!(del("a").commutes_with(&del("b")).is_none());
    }
}

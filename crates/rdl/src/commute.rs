//! Commutativity metadata for the RDL type families.
//!
//! The static analysis pass (`er-pi-analysis`) classifies every pair of
//! recorded update events as *commuting* or *conflicting*. The library is
//! the right owner of that knowledge: whether two operations commute is a
//! property of the data type's semantics, not of any particular workload.
//! This module captures, per type family, the commutativity table the
//! analysis consults.
//!
//! The tables are deliberately conservative: when an argument needed for a
//! disjointness judgement is unknown (e.g. a list position that the proxy
//! could not extract), the pair is reported as conflicting. Conservatism
//! only costs pruning opportunities; it never merges interleavings that
//! could differ.
//!
//! Every arm of the table is checked by the bounded commutativity certifier
//! in `er-pi-analysis` (`certify_table`): "commutes" claims are replayed in
//! both orders against the real types and must converge, and each conflict
//! reason listed by [`conflict_reasons`] must carry a concrete divergence
//! witness (or be a defensive fallback unreachable from the proxy
//! vocabulary). Two findings of that audit are baked in here: RGA inserts
//! resolve their anchor from the *current* visible list, so concurrent
//! inserts conflict even at known-distinct indices, and a second remove of
//! the same element fails on observed-remove sets, so same-element removes
//! race on their outcome even though the final state converges.
//!
//! ```
//! use er_pi_model::Value;
//! use er_pi_rdl::{CrdtType, OpKind, OpProfile};
//!
//! let inc = OpProfile::new(CrdtType::PnCounter, OpKind::Inc);
//! let dec = OpProfile::new(CrdtType::PnCounter, OpKind::Dec);
//! assert!(inc.commutes_with(&dec).is_none(), "counter ops always commute");
//!
//! let add = OpProfile::new(CrdtType::OrSet, OpKind::Add { element: Some(Value::from("x")) });
//! let del = OpProfile::new(CrdtType::OrSet, OpKind::Remove { element: Some(Value::from("x")) });
//! assert!(add.commutes_with(&del).is_some(), "add/remove of one element conflict");
//! ```

use er_pi_model::Value;

/// The RDL type families whose operations the analysis can classify.
///
/// One variant per family of `er-pi-rdl` types; operations on *different*
/// families always commute because they act on disjoint objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrdtType {
    /// [`GCounter`](crate::GCounter) — grow-only counter.
    GCounter,
    /// [`PnCounter`](crate::PnCounter) — increment/decrement counter.
    PnCounter,
    /// [`LwwRegister`](crate::LwwRegister) — last-writer-wins register.
    LwwRegister,
    /// [`MvRegister`](crate::MvRegister) — multi-value register.
    MvRegister,
    /// [`GSet`](crate::GSet) — grow-only set.
    GSet,
    /// [`TwoPhaseSet`](crate::TwoPhaseSet) — add/remove-once set.
    TwoPhaseSet,
    /// [`OrSet`](crate::OrSet) — observed-remove set.
    OrSet,
    /// [`LwwElementSet`](crate::LwwElementSet) — timestamped add/remove set.
    LwwElementSet,
    /// [`Rga`](crate::Rga) — replicated growable array (list).
    Rga,
    /// [`LwwMap`](crate::LwwMap) — last-writer-wins map.
    LwwMap,
    /// [`OrMap`](crate::OrMap) — observed-remove map.
    OrMap,
    /// [`LwwTimeSeries`](crate::LwwTimeSeries) — Roshi-style scored set.
    LwwTimeSeries,
    /// [`MerkleLog`](crate::MerkleLog) — OrbitDB-style append log.
    MerkleLog,
    /// [`JsonDoc`](crate::JsonDoc) — Yorkie-style JSON document.
    JsonDoc,
}

/// The abstract shape of one intercepted operation, as far as commutativity
/// is concerned.
///
/// `None` arguments mean "statically unknown" and make every judgement that
/// needs them conservative (conflicting).
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Counter increment.
    Inc,
    /// Counter decrement.
    Dec,
    /// Register / map / document write, keyed when the target is keyed.
    Write {
        /// Register key, map key, or document path.
        key: Option<Value>,
    },
    /// Set insertion (also time-series insertion, keyed by member).
    Add {
        /// The inserted element.
        element: Option<Value>,
    },
    /// Set removal (also map key removal and time-series deletion).
    Remove {
        /// The removed element or key.
        element: Option<Value>,
    },
    /// Sequence insertion at a position.
    Insert {
        /// Insertion index.
        position: Option<i64>,
    },
    /// Sequence deletion at a position.
    Delete {
        /// Deletion index.
        position: Option<i64>,
    },
    /// Sequence move.
    Move {
        /// `true` for a move primitive with CRDT support; `false` for the
        /// delete+insert reimplementation (Table 2's misconception #3).
        safe: bool,
    },
    /// Log append.
    Append,
    /// Creation of an item under a locally computed sequential identifier
    /// (Table 2's misconception #4).
    MintId,
    /// Pure observation of the object (query, page assembly, …).
    Read,
}

/// One operation's commutativity-relevant profile: which type family it
/// touches and what it does to it.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// The type family the operation targets.
    pub crdt: CrdtType,
    /// The abstract action.
    pub kind: OpKind,
}

impl OpProfile {
    /// Creates a profile.
    pub fn new(crdt: CrdtType, kind: OpKind) -> Self {
        OpProfile { crdt, kind }
    }

    /// Consults the per-type commutativity table: returns `None` when the
    /// two operations commute, or `Some(reason)` naming the conflict.
    ///
    /// The relation is symmetric: `a.commutes_with(b)` and
    /// `b.commutes_with(a)` agree on commute-vs-conflict.
    pub fn commutes_with(&self, other: &OpProfile) -> Option<&'static str> {
        if self.crdt != other.crdt {
            return None; // disjoint objects always commute
        }
        conflict(self.crdt, &self.kind, &other.kind)
            .or_else(|| conflict(self.crdt, &other.kind, &self.kind))
    }
}

/// Returns `true` when both values are known and distinct — the only case
/// where a keyed/element-wise disjointness argument is allowed.
fn known_distinct(a: &Option<Value>, b: &Option<Value>) -> bool {
    matches!((a, b), (Some(x), Some(y)) if x != y)
}

/// The one-directional conflict table; [`OpProfile::commutes_with`]
/// symmetrizes it.
fn conflict(crdt: CrdtType, a: &OpKind, b: &OpKind) -> Option<&'static str> {
    use OpKind::*;
    // Reads conflict with every mutation of the same object: the observed
    // value depends on whether the mutation ran first. Checked for either
    // operand here — the family arms below never see a `Read`, and the
    // one-directional `conflict(mutation, read)` call must not fall into a
    // family's defensive fallback (a certifier-found misfiling: the
    // fallback's `Some` would short-circuit the symmetrization pass).
    if matches!(a, Read) || matches!(b, Read) {
        return match (a, b) {
            (Read, Read) => None,
            _ => Some("observation does not commute with a mutation"),
        };
    }
    match crdt {
        // Counter increments and decrements commute unconditionally.
        CrdtType::GCounter | CrdtType::PnCounter => match (a, b) {
            (Inc | Dec, Inc | Dec) => None,
            _ => Some("unsupported counter operation"),
        },
        // Grow-only sets: adds commute, even of the same element.
        CrdtType::GSet => match (a, b) {
            (Add { .. }, Add { .. }) => None,
            _ => Some("unsupported grow-only set operation"),
        },
        // Observed-remove flavoured sets and maps: adds commute (fresh
        // tags), but an add and a remove of the same element race —
        // remove-before-add and add-before-remove leave different states —
        // and two removes of the same element race on their *outcome*: the
        // second remove finds nothing to observe and fails, so which of the
        // two fails depends on order even though the final state converges.
        CrdtType::OrSet | CrdtType::TwoPhaseSet | CrdtType::OrMap => match (a, b) {
            (Add { .. }, Add { .. }) => None,
            (Remove { element: x }, Remove { element: y }) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("same-element removes race on the failure outcome")
                }
            }
            (Add { element: x }, Remove { element: y })
            | (Remove { element: x }, Add { element: y }) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("add and remove of one element race")
                }
            }
            (Write { key: x }, Write { key: y })
            | (Write { key: x }, Remove { element: y })
            | (Remove { element: x }, Write { key: y }) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("same-key map updates race")
                }
            }
            (MintId, _) | (_, MintId) => {
                Some("sequential-ID creation reads a non-replicated maximum")
            }
            _ => Some("unsupported set operation"),
        },
        // Timestamped add/remove sets: adds and removes return nothing and
        // keep the per-element *maximum* timestamp, so same-kind pairs
        // commute even on one element — the certifier found the previous
        // same-element add/add conflict entry vacuous (no divergence witness
        // exists). An add racing a remove of one element still tie-breaks on
        // timestamps, which swaps flip.
        CrdtType::LwwElementSet => match (a, b) {
            (Add { .. }, Add { .. }) | (Remove { .. }, Remove { .. }) => None,
            (Add { element: x }, Remove { element: y })
            | (Remove { element: x }, Add { element: y }) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("add and remove of one element race")
                }
            }
            _ => Some("unsupported set operation"),
        },
        // LWW registers: concurrent writes with equal timestamps resolve by
        // tie-break, so write/write conflicts unless keyed and disjoint.
        CrdtType::LwwRegister | CrdtType::MvRegister | CrdtType::JsonDoc => match (a, b) {
            (Write { key: x }, Write { key: y }) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("register writes tie-break on equal timestamps")
                }
            }
            (Write { key: x }, Remove { element: y })
            | (Remove { element: x }, Write { key: y }) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("write and delete of one path race")
                }
            }
            // Document path removes fail when the path is already gone, so
            // which remove fails depends on order (JsonDoc returns a
            // `Result`). Plain registers have no remove in the proxy
            // vocabulary, so the keyed judgement is harmless for them.
            (Remove { element: x }, Remove { element: y }) => {
                if crdt != CrdtType::JsonDoc || known_distinct(x, y) {
                    None
                } else {
                    Some("same-element removes race on the failure outcome")
                }
            }
            _ => Some("unsupported register operation"),
        },
        // LWW maps: keyed writes/removes commute iff keys are known
        // disjoint. Same-key removes both leave a tombstone whose timestamp
        // resolves to the maximum, and signal an LWW win rather than a
        // failure, so they commute — the certifier found the previous
        // same-key remove/remove conflict entry vacuous.
        CrdtType::LwwMap => match (a, b) {
            (Remove { .. }, Remove { .. }) => None,
            (
                Write { key: x } | Remove { element: x },
                Write { key: y } | Remove { element: y },
            ) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("same-key map updates race")
                }
            }
            _ => Some("unsupported map operation"),
        },
        // Sequences: an insert resolves its anchor (the element currently
        // before the target index) from the *visible* list at application
        // time, so a concurrent insert shifts it even at a known-distinct
        // index — the certifier holds a divergence witness for inserts at
        // distinct indices, so all insert pairs conflict. Deletions and
        // moves shift indices, so any combination involving them conflicts,
        // and the delete+insert move reimplementation conflicts even with
        // itself.
        CrdtType::Rga => match (a, b) {
            (Insert { .. }, Insert { .. }) => {
                Some("concurrent list inserts race on anchor resolution")
            }
            (Delete { .. } | Move { .. }, _) | (_, Delete { .. } | Move { .. }) => {
                Some("index-shifting list operation")
            }
            _ => Some("unsupported sequence operation"),
        },
        // Scored sets (Roshi): per-member LWW semantics.
        CrdtType::LwwTimeSeries => match (a, b) {
            (
                Add { element: x } | Remove { element: x },
                Add { element: y } | Remove { element: y },
            ) => {
                if known_distinct(x, y) {
                    None
                } else {
                    Some("same-member scored updates tie-break on timestamps")
                }
            }
            _ => Some("unsupported time-series operation"),
        },
        // Append logs: the log order itself is observable state, so appends
        // never commute.
        CrdtType::MerkleLog => Some("log appends are order-observable"),
    }
}

/// One row of the conflict-reason enumeration: a reason string the table
/// can emit, the families whose arms emit it, and whether the arm is a
/// defensive fallback that no operation expressible through the proxy
/// vocabulary (or the library's public API) can reach.
///
/// The bounded certifier in `er-pi-analysis` iterates this enumeration to
/// check coverage: every non-defensive reason must carry a concrete
/// divergence witness, and every defensive reason must stay unreachable
/// from executable operation pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictReason {
    /// The reason string exactly as `commutes_with` returns it.
    pub reason: &'static str,
    /// Families whose table arms can emit this reason.
    pub families: &'static [CrdtType],
    /// `true` when the arm is a defensive fallback for operation kinds the
    /// family does not support; such arms must never fire for executable
    /// pairs.
    pub defensive: bool,
}

/// Enumerates every distinct conflict reason the table can emit, together
/// with the families producing it. The list is the table's claim surface:
/// the certifier fails if an executable pair emits a reason missing here,
/// so additions to [`conflict`] must be mirrored below.
pub fn conflict_reasons() -> &'static [ConflictReason] {
    use CrdtType::*;
    const ALL: &[CrdtType] = &[
        GCounter,
        PnCounter,
        LwwRegister,
        MvRegister,
        GSet,
        TwoPhaseSet,
        OrSet,
        LwwElementSet,
        Rga,
        LwwMap,
        OrMap,
        LwwTimeSeries,
        MerkleLog,
        JsonDoc,
    ];
    &[
        ConflictReason {
            reason: "observation does not commute with a mutation",
            families: ALL,
            defensive: false,
        },
        ConflictReason {
            reason: "unsupported counter operation",
            families: &[GCounter, PnCounter],
            defensive: true,
        },
        ConflictReason {
            reason: "unsupported grow-only set operation",
            families: &[GSet],
            defensive: true,
        },
        ConflictReason {
            reason: "add and remove of one element race",
            families: &[OrSet, TwoPhaseSet, LwwElementSet],
            defensive: false,
        },
        ConflictReason {
            reason: "same-element removes race on the failure outcome",
            families: &[OrSet, TwoPhaseSet, OrMap, JsonDoc],
            defensive: false,
        },
        ConflictReason {
            reason: "same-key map updates race",
            families: &[LwwMap, OrMap],
            defensive: false,
        },
        ConflictReason {
            reason: "sequential-ID creation reads a non-replicated maximum",
            families: &[OrMap],
            defensive: false,
        },
        ConflictReason {
            reason: "unsupported set operation",
            families: &[OrSet, TwoPhaseSet, LwwElementSet, OrMap],
            defensive: true,
        },
        ConflictReason {
            reason: "register writes tie-break on equal timestamps",
            families: &[LwwRegister, MvRegister, JsonDoc],
            defensive: false,
        },
        ConflictReason {
            reason: "write and delete of one path race",
            families: &[JsonDoc],
            defensive: false,
        },
        ConflictReason {
            reason: "unsupported register operation",
            families: &[LwwRegister, MvRegister, JsonDoc],
            defensive: true,
        },
        ConflictReason {
            reason: "unsupported map operation",
            families: &[LwwMap],
            defensive: true,
        },
        ConflictReason {
            reason: "concurrent list inserts race on anchor resolution",
            families: &[Rga],
            defensive: false,
        },
        ConflictReason {
            reason: "index-shifting list operation",
            families: &[Rga],
            defensive: false,
        },
        ConflictReason {
            reason: "unsupported sequence operation",
            families: &[Rga],
            defensive: true,
        },
        ConflictReason {
            reason: "same-member scored updates tie-break on timestamps",
            families: &[LwwTimeSeries],
            defensive: false,
        },
        ConflictReason {
            reason: "unsupported time-series operation",
            families: &[LwwTimeSeries],
            defensive: true,
        },
        ConflictReason {
            reason: "log appends are order-observable",
            families: &[MerkleLog],
            defensive: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(crdt: CrdtType, kind: OpKind) -> OpProfile {
        OpProfile::new(crdt, kind)
    }

    #[test]
    fn different_families_always_commute() {
        let inc = p(CrdtType::PnCounter, OpKind::Inc);
        let app = p(CrdtType::MerkleLog, OpKind::Append);
        assert!(inc.commutes_with(&app).is_none());
    }

    #[test]
    fn counters_commute() {
        let inc = p(CrdtType::PnCounter, OpKind::Inc);
        let dec = p(CrdtType::PnCounter, OpKind::Dec);
        assert!(inc.commutes_with(&inc).is_none());
        assert!(inc.commutes_with(&dec).is_none());
        let ginc = p(CrdtType::GCounter, OpKind::Inc);
        assert!(ginc.commutes_with(&ginc).is_none());
    }

    #[test]
    fn orset_add_remove_same_element_conflict() {
        let add = |e: &str| {
            p(
                CrdtType::OrSet,
                OpKind::Add {
                    element: Some(Value::from(e)),
                },
            )
        };
        let del = |e: &str| {
            p(
                CrdtType::OrSet,
                OpKind::Remove {
                    element: Some(Value::from(e)),
                },
            )
        };
        assert!(add("x").commutes_with(&add("x")).is_none());
        assert!(add("x").commutes_with(&del("x")).is_some());
        assert!(del("x").commutes_with(&add("x")).is_some(), "symmetric");
        assert!(add("x").commutes_with(&del("y")).is_none());
        assert!(
            del("x").commutes_with(&del("x")).is_some(),
            "the second remove of one element fails, so the outcome races"
        );
        assert!(del("x").commutes_with(&del("y")).is_none());
    }

    #[test]
    fn lww_element_set_same_kind_pairs_commute() {
        let add = |e: &str| {
            p(
                CrdtType::LwwElementSet,
                OpKind::Add {
                    element: Some(Value::from(e)),
                },
            )
        };
        let del = |e: &str| {
            p(
                CrdtType::LwwElementSet,
                OpKind::Remove {
                    element: Some(Value::from(e)),
                },
            )
        };
        assert!(add("x").commutes_with(&add("x")).is_none());
        assert!(del("x").commutes_with(&del("x")).is_none());
        assert!(add("x").commutes_with(&del("x")).is_some());
    }

    #[test]
    fn unknown_elements_are_conservative() {
        let add = p(CrdtType::OrSet, OpKind::Add { element: None });
        let del = p(
            CrdtType::OrSet,
            OpKind::Remove {
                element: Some(Value::from("y")),
            },
        );
        assert!(
            add.commutes_with(&del).is_some(),
            "unknown element must conflict"
        );
    }

    #[test]
    fn rga_inserts_always_conflict() {
        // Even at known-distinct indices: the anchor of the later insert is
        // resolved from the visible list, which the other insert shifts.
        let ins = |i: i64| p(CrdtType::Rga, OpKind::Insert { position: Some(i) });
        assert!(ins(0).commutes_with(&ins(0)).is_some());
        assert!(ins(0).commutes_with(&ins(3)).is_some());
        let unknown = p(CrdtType::Rga, OpKind::Insert { position: None });
        assert!(unknown.commutes_with(&ins(3)).is_some());
    }

    #[test]
    fn rga_moves_and_deletes_conflict_with_everything() {
        let mv = p(CrdtType::Rga, OpKind::Move { safe: true });
        let ins = p(CrdtType::Rga, OpKind::Insert { position: Some(0) });
        let del = p(CrdtType::Rga, OpKind::Delete { position: Some(4) });
        assert!(mv.commutes_with(&mv).is_some());
        assert!(mv.commutes_with(&ins).is_some());
        assert!(del.commutes_with(&ins).is_some());
        assert!(del.commutes_with(&del).is_some());
    }

    #[test]
    fn lww_writes_conflict_unless_keyed_disjoint() {
        let w = |k: i64| {
            p(
                CrdtType::LwwMap,
                OpKind::Write {
                    key: Some(Value::from(k)),
                },
            )
        };
        assert!(w(1).commutes_with(&w(1)).is_some());
        assert!(w(1).commutes_with(&w(2)).is_none());
        let unkeyed = p(CrdtType::LwwRegister, OpKind::Write { key: None });
        assert!(
            unkeyed.commutes_with(&unkeyed).is_some(),
            "equal-timestamp tie-break"
        );
        let doc = |k: &str| {
            p(
                CrdtType::JsonDoc,
                OpKind::Write {
                    key: Some(Value::from(k)),
                },
            )
        };
        assert!(doc("a").commutes_with(&doc("b")).is_none());
        assert!(doc("a").commutes_with(&doc("a")).is_some());
    }

    #[test]
    fn lww_map_removes_commute() {
        let rm = |k: i64| {
            p(
                CrdtType::LwwMap,
                OpKind::Remove {
                    element: Some(Value::from(k)),
                },
            )
        };
        let w = |k: i64| {
            p(
                CrdtType::LwwMap,
                OpKind::Write {
                    key: Some(Value::from(k)),
                },
            )
        };
        assert!(rm(1).commutes_with(&rm(1)).is_none(), "tombstones take max");
        assert!(rm(1).commutes_with(&w(1)).is_some());
    }

    #[test]
    fn json_doc_removes_of_one_path_conflict() {
        let rm = |k: &str| {
            p(
                CrdtType::JsonDoc,
                OpKind::Remove {
                    element: Some(Value::from(k)),
                },
            )
        };
        assert!(rm("p").commutes_with(&rm("p")).is_some());
        assert!(rm("p").commutes_with(&rm("q")).is_none());
    }

    #[test]
    fn every_emitted_reason_is_enumerated() {
        // Spot-check that reasons produced by the table appear in
        // `conflict_reasons` (the certifier checks this exhaustively over
        // the executable vocabulary).
        let listed: Vec<&str> = conflict_reasons().iter().map(|r| r.reason).collect();
        let add = p(
            CrdtType::OrSet,
            OpKind::Add {
                element: Some(Value::from("x")),
            },
        );
        let del = p(
            CrdtType::OrSet,
            OpKind::Remove {
                element: Some(Value::from("x")),
            },
        );
        assert!(listed.contains(&add.commutes_with(&del).unwrap()));
        let app = p(CrdtType::MerkleLog, OpKind::Append);
        assert!(listed.contains(&app.commutes_with(&app).unwrap()));
        // No duplicate reason rows.
        let mut dedup = listed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), listed.len());
    }

    #[test]
    fn log_appends_never_commute() {
        let app = p(CrdtType::MerkleLog, OpKind::Append);
        assert!(app.commutes_with(&app).is_some());
    }

    #[test]
    fn mint_id_conflicts_with_itself() {
        let mint = p(CrdtType::OrMap, OpKind::MintId);
        assert!(mint.commutes_with(&mint).is_some());
    }

    #[test]
    fn reads_conflict_with_writes_but_not_reads() {
        let read = p(CrdtType::LwwTimeSeries, OpKind::Read);
        let add = p(
            CrdtType::LwwTimeSeries,
            OpKind::Add {
                element: Some(Value::from("m")),
            },
        );
        assert!(read.commutes_with(&read).is_none());
        assert!(read.commutes_with(&add).is_some());
        assert!(add.commutes_with(&read).is_some());
    }

    #[test]
    fn timeseries_same_member_conflicts() {
        let add = |m: &str| {
            p(
                CrdtType::LwwTimeSeries,
                OpKind::Add {
                    element: Some(Value::from(m)),
                },
            )
        };
        let del = |m: &str| {
            p(
                CrdtType::LwwTimeSeries,
                OpKind::Remove {
                    element: Some(Value::from(m)),
                },
            )
        };
        assert!(add("a").commutes_with(&add("b")).is_none());
        assert!(add("a").commutes_with(&add("a")).is_some());
        assert!(add("a").commutes_with(&del("a")).is_some());
        assert!(del("a").commutes_with(&del("b")).is_none());
    }
}

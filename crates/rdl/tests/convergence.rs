//! Property-based convergence tests for the RDL substrate.
//!
//! Every state-based CRDT must satisfy the join-semilattice laws
//! (commutativity, associativity, idempotence), and every op-based CRDT must
//! converge under arbitrary delivery orders with redelivery.

use proptest::prelude::*;

use er_pi_model::{LamportTimestamp, ReplicaId, Value};
use er_pi_rdl::{
    Bias, DeltaSync, GCounter, GSet, LwwElementSet, LwwMap, LwwTimeSeries, MerkleLog, OrSet,
    PnCounter, Rga, StateCrdt, TieBreak, TwoPhaseSet,
};

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

/// Checks the three semilattice laws on three concrete states.
fn check_lattice_laws<T: StateCrdt + PartialEq + std::fmt::Debug>(a: &T, b: &T, c: &T) {
    let ab_c = a.merged(b).merged(c);
    let a_bc = a.merged(&b.merged(c));
    assert_eq!(ab_c, a_bc, "associativity");
    let aa = a.merged(a);
    assert_eq!(&aa, a, "idempotence");
}

/// Commutativity needs a semantic equality hook because some types carry
/// owner-replica handle metadata; here we compare via a projection.
fn check_commutative<T: StateCrdt, P: PartialEq + std::fmt::Debug>(
    a: &T,
    b: &T,
    project: impl Fn(&T) -> P,
) {
    assert_eq!(
        project(&a.merged(b)),
        project(&b.merged(a)),
        "commutativity"
    );
}

#[derive(Debug, Clone)]
enum SetAction {
    Insert(u8),
    Remove(u8),
}

fn arb_set_actions() -> impl Strategy<Value = Vec<(u16, SetAction)>> {
    proptest::collection::vec(
        (
            0u16..3,
            prop_oneof![
                (0u8..8).prop_map(SetAction::Insert),
                (0u8..8).prop_map(SetAction::Remove),
            ],
        ),
        0..24,
    )
}

proptest! {
    #[test]
    fn gcounter_laws(xs in proptest::collection::vec((0u16..3, 1u64..10), 0..12)) {
        let mut states = [GCounter::new(r(0)), GCounter::new(r(1)), GCounter::new(r(2))];
        for (rep, by) in xs {
            states[(rep % 3) as usize].increment(by);
        }
        let [a, b, c] = states;
        check_lattice_laws(&a, &b, &c);
        check_commutative(&a, &b, GCounter::value);
    }

    #[test]
    fn pncounter_laws(xs in proptest::collection::vec((0u16..3, 1u64..10, any::<bool>()), 0..12)) {
        let mut states = [PnCounter::new(r(0)), PnCounter::new(r(1)), PnCounter::new(r(2))];
        for (rep, by, up) in xs {
            if up {
                states[(rep % 3) as usize].increment(by);
            } else {
                states[(rep % 3) as usize].decrement(by);
            }
        }
        let [a, b, c] = states;
        check_lattice_laws(&a, &b, &c);
        check_commutative(&a, &b, PnCounter::value);
    }

    #[test]
    fn gset_laws(xs in proptest::collection::vec((0usize..3, 0u8..10), 0..20)) {
        let mut states = [GSet::new(), GSet::new(), GSet::new()];
        for (rep, v) in xs {
            states[rep % 3].insert(v);
        }
        let [a, b, c] = states;
        check_lattice_laws(&a, &b, &c);
        check_commutative(&a, &b, |s: &GSet<u8>| s.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn twophase_set_laws(actions in arb_set_actions()) {
        let mut states = [TwoPhaseSet::new(), TwoPhaseSet::new(), TwoPhaseSet::new()];
        for (rep, act) in actions {
            let s = &mut states[(rep % 3) as usize];
            match act {
                SetAction::Insert(v) => { s.insert(v); }
                SetAction::Remove(v) => { s.remove(&v); }
            }
        }
        let [a, b, c] = states;
        check_lattice_laws(&a, &b, &c);
        check_commutative(&a, &b, |s: &TwoPhaseSet<u8>| s.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn lww_element_set_laws(
        ops in proptest::collection::vec((0u8..6, 0u64..20, 0u16..3, any::<bool>()), 0..24)
    ) {
        let mut states = [
            LwwElementSet::new(Bias::Add),
            LwwElementSet::new(Bias::Add),
            LwwElementSet::new(Bias::Add),
        ];
        for (elem, t, rep, add) in ops {
            let ts = LamportTimestamp::new(t, r(rep));
            let s = &mut states[rep as usize];
            if add {
                s.add(elem, ts);
            } else {
                s.remove(elem, ts);
            }
        }
        let [a, b, c] = states;
        check_lattice_laws(&a, &b, &c);
        check_commutative(&a, &b, |s: &LwwElementSet<u8>| {
            s.elements().into_iter().copied().collect::<Vec<_>>()
        });
    }

    #[test]
    fn lww_map_laws(
        ops in proptest::collection::vec((0u8..4, 0i64..50, 0u64..20, 0u16..3, any::<bool>()), 0..24)
    ) {
        let mut states = [LwwMap::new(), LwwMap::new(), LwwMap::new()];
        for (k, v, t, rep, put) in ops {
            let ts = LamportTimestamp::new(t, r(rep));
            let m = &mut states[rep as usize];
            if put {
                m.put(k, v, ts);
            } else {
                m.remove(&k, ts);
            }
        }
        let [a, b, c] = states;
        check_lattice_laws(&a, &b, &c);
        check_commutative(&a, &b, |m: &LwwMap<u8, i64>| {
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        });
    }

    #[test]
    fn timeseries_insertwins_laws(
        ops in proptest::collection::vec((0u8..3, 0u8..5, 1u64..20, 0usize..3, any::<bool>()), 0..24)
    ) {
        let mut states = [
            LwwTimeSeries::new(TieBreak::InsertWins),
            LwwTimeSeries::new(TieBreak::InsertWins),
            LwwTimeSeries::new(TieBreak::InsertWins),
        ];
        for (key, member, score, rep, ins) in ops {
            let key = format!("k{key}");
            let member = format!("m{member}");
            let s = &mut states[rep % 3];
            if ins {
                s.insert(&key, &member, score);
            } else {
                s.delete(&key, &member, score);
            }
        }
        let [a, b, c] = states;
        let view = |s: &LwwTimeSeries| {
            s.keys()
                .map(|k| (k.to_owned(), s.select(k, 0, usize::MAX)))
                .collect::<Vec<_>>()
        };
        check_commutative(&a, &b, view);
        // Associativity/idempotence on the observable view.
        assert_eq!(view(&a.merged(&b).merged(&c)), view(&a.merged(&b.merged(&c))));
        assert_eq!(view(&a.merged(&a)), view(&a));
    }

    /// OrSet: applying the same ops in any order converges, with redelivery.
    #[test]
    fn orset_delivery_order_independent(
        actions in arb_set_actions(),
        order in Just(()).prop_perturb(|(), mut rng| rng.gen::<u64>()),
    ) {
        let mut sources = [OrSet::new(r(0)), OrSet::new(r(1)), OrSet::new(r(2))];
        let mut ops = Vec::new();
        for (rep, act) in actions {
            let s = &mut sources[(rep % 3) as usize];
            match act {
                SetAction::Insert(v) => ops.push(s.insert(v)),
                SetAction::Remove(v) => {
                    // Removes act on observed state: sync first.
                    if let Some(op) = s.remove(&v) {
                        ops.push(op);
                    }
                }
            }
        }
        // Observer 1: in-order, each op twice (redelivery).
        let mut obs1 = OrSet::new(r(9));
        for op in &ops {
            obs1.apply_op(op);
            obs1.apply_op(op);
        }
        // Observer 2: deterministic pseudo-shuffled order.
        let mut shuffled: Vec<_> = ops.clone();
        let mut seed = order;
        for i in (1..shuffled.len()).rev() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (seed >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut obs2 = OrSet::new(r(10));
        for op in &shuffled {
            obs2.apply_op(op);
        }
        prop_assert_eq!(obs1.elements(), obs2.elements());
    }

    /// RGA: delivery order independence (with causal buffering) and
    /// convergence of concurrent edits.
    #[test]
    fn rga_delivery_order_independent(
        values in proptest::collection::vec(0u8..100, 1..10),
        order in Just(()).prop_perturb(|(), mut rng| rng.gen::<u64>()),
    ) {
        let mut src = Rga::new(r(0));
        let mut ops = Vec::new();
        for (i, v) in values.iter().enumerate() {
            if i % 3 == 2 && src.len() > 1 {
                if let Some(op) = src.delete(i % src.len()) {
                    ops.push(op);
                }
            }
            ops.push(src.insert(src.len().min(i % (src.len() + 1)), *v));
        }
        let mut obs1 = Rga::new(r(1));
        for op in &ops {
            obs1.apply_op(op);
        }
        let mut shuffled = ops.clone();
        let mut seed = order;
        for i in (1..shuffled.len()).rev() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (seed >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut obs2 = Rga::new(r(2));
        for op in &shuffled {
            obs2.apply_op(op);
            obs2.apply_op(op); // redelivery
        }
        prop_assert_eq!(obs1.values(), obs2.values());
        prop_assert_eq!(obs1.values(), src.values());
    }

    /// MerkleLog: entry-set union is order independent; deterministic sort
    /// yields identical reads.
    #[test]
    fn merkle_log_union_order_independent(
        payloads in proptest::collection::vec((0u16..3, 0i64..100), 1..12),
        order in Just(()).prop_perturb(|(), mut rng| rng.gen::<u64>()),
    ) {
        let mut writers = [
            MerkleLog::new(r(0), "w0"),
            MerkleLog::new(r(1), "w1"),
            MerkleLog::new(r(2), "w2"),
        ];
        let mut entries = Vec::new();
        for (rep, v) in payloads {
            entries.push(writers[(rep % 3) as usize].append(Value::from(v)));
        }
        let mut obs1 = MerkleLog::new(r(8), "obs1");
        for e in &entries {
            obs1.apply_op(e);
        }
        let mut shuffled = entries.clone();
        let mut seed = order;
        for i in (1..shuffled.len()).rev() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (seed >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut obs2 = MerkleLog::new(r(9), "obs2");
        for e in &shuffled {
            obs2.apply_op(e);
        }
        prop_assert_eq!(obs1.values(), obs2.values());
        prop_assert_eq!(obs1.heads().len(), obs2.heads().len());
    }
}

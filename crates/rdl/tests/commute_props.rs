//! Property tests for the commutativity table ([`OpProfile::commutes_with`]).
//!
//! The bounded certifier in `er-pi-analysis` checks the table against the
//! real types; these properties pin the *algebraic* contract of the table
//! itself, over the full generated space of profiles:
//!
//! * **Symmetry** — `a.commutes_with(b)` and `b.commutes_with(a)` agree on
//!   commute-vs-conflict for every pair, including cross-family ones. The
//!   analysis inserts both fact directions from one call, so an asymmetric
//!   table would silently desynchronize the Datalog base facts.
//! * **Reflexive-disjointness** — operations on *different* families always
//!   commute (they act on disjoint objects), and that verdict is symmetric.
//! * **Erasure conservatism** — replacing a known argument with `None`
//!   (statically unknown) never turns a conflict into a commute. Unknown
//!   arguments may only *lose* pruning opportunities, never merge more.

use proptest::prelude::*;

use er_pi_model::Value;
use er_pi_rdl::{CrdtType, OpKind, OpProfile};

/// Every type family, indexable by a generated integer.
const FAMILIES: [CrdtType; 14] = [
    CrdtType::GCounter,
    CrdtType::PnCounter,
    CrdtType::LwwRegister,
    CrdtType::MvRegister,
    CrdtType::GSet,
    CrdtType::TwoPhaseSet,
    CrdtType::OrSet,
    CrdtType::LwwElementSet,
    CrdtType::Rga,
    CrdtType::LwwMap,
    CrdtType::OrMap,
    CrdtType::LwwTimeSeries,
    CrdtType::MerkleLog,
    CrdtType::JsonDoc,
];

/// Number of [`OpKind`] shapes `kind_at` can produce.
const KIND_SHAPES: usize = 11;

/// Decodes one generated `(shape, argument, argument-known)` triple into an
/// [`OpKind`]. Arguments are drawn from a 3-value domain so equal and
/// distinct argument pairs both occur often.
fn kind_at(shape: usize, arg: i64, known: bool) -> OpKind {
    let value = known.then(|| Value::from(arg));
    let position = known.then_some(arg);
    match shape {
        0 => OpKind::Inc,
        1 => OpKind::Dec,
        2 => OpKind::Write { key: value },
        3 => OpKind::Add { element: value },
        4 => OpKind::Remove { element: value },
        5 => OpKind::Insert { position },
        6 => OpKind::Delete { position },
        7 => OpKind::Move { safe: arg % 2 == 0 },
        8 => OpKind::Append,
        9 => OpKind::MintId,
        _ => OpKind::Read,
    }
}

/// Erases every known argument from `kind` — the profile the analysis
/// would build had the proxy failed to extract the arguments.
fn erased(kind: &OpKind) -> OpKind {
    match kind {
        OpKind::Write { .. } => OpKind::Write { key: None },
        OpKind::Add { .. } => OpKind::Add { element: None },
        OpKind::Remove { .. } => OpKind::Remove { element: None },
        OpKind::Insert { .. } => OpKind::Insert { position: None },
        OpKind::Delete { .. } => OpKind::Delete { position: None },
        other => other.clone(),
    }
}

fn arb_profile() -> impl Strategy<Value = OpProfile> {
    (
        0usize..FAMILIES.len(),
        0usize..KIND_SHAPES,
        0i64..3,
        any::<bool>(),
    )
        .prop_map(|(f, shape, arg, known)| OpProfile::new(FAMILIES[f], kind_at(shape, arg, known)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn commutes_with_is_symmetric(a in arb_profile(), b in arb_profile()) {
        let ab = a.commutes_with(&b);
        let ba = b.commutes_with(&a);
        prop_assert_eq!(
            ab.is_some(),
            ba.is_some(),
            "asymmetric verdict for {:?} vs {:?}: {:?} / {:?}",
            a, b, ab, ba
        );
    }

    #[test]
    fn cross_family_pairs_always_commute(a in arb_profile(), b in arb_profile()) {
        prop_assume!(a.crdt != b.crdt);
        prop_assert_eq!(
            a.commutes_with(&b),
            None,
            "cross-family pair must commute: {:?} vs {:?}",
            a, b
        );
        prop_assert_eq!(b.commutes_with(&a), None);
    }

    #[test]
    fn erasing_arguments_never_unlocks_commuting(a in arb_profile(), b in arb_profile()) {
        prop_assume!(a.commutes_with(&b).is_some());
        let ea = OpProfile::new(a.crdt, erased(&a.kind));
        let eb = OpProfile::new(b.crdt, erased(&b.kind));
        prop_assert!(
            ea.commutes_with(&eb).is_some(),
            "erasure turned a conflict into a commute: {:?} vs {:?} erased to {:?} vs {:?}",
            a, b, ea, eb
        );
    }

    #[test]
    fn verdicts_are_pure(a in arb_profile(), b in arb_profile()) {
        prop_assert_eq!(a.commutes_with(&b), a.commutes_with(&b));
    }
}

/// Same-profile pairs: the table must never claim an operation conflicts
/// with itself asymmetrically, and counter/grow-only self-pairs commute.
#[test]
fn self_pairs_are_symmetric_across_the_whole_vocabulary() {
    for f in FAMILIES {
        for shape in 0..KIND_SHAPES {
            for (arg, known) in [(0, true), (1, true), (0, false)] {
                let p = OpProfile::new(f, kind_at(shape, arg, known));
                let fwd = p.commutes_with(&p.clone());
                let rev = p.clone().commutes_with(&p);
                assert_eq!(fwd, rev, "self-pair asymmetry for {p:?}");
            }
        }
    }
}

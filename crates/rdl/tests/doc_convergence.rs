//! Property tests for the JSON document CRDT: convergence of concurrent
//! editing sessions under full synchronization, restricted to the
//! well-behaved operation subset (per-key sets/removes and array edits —
//! the whole-subtree `set_object` is deliberately excluded, since its
//! interaction with concurrent siblings is the Yorkie-2 defect surface
//! this library intentionally models).

use proptest::prelude::*;

use er_pi_model::{ReplicaId, Value};
use er_pi_rdl::{DeltaSync, JsonDoc};

#[derive(Debug, Clone)]
enum DocAction {
    Set(u8, i64),
    Remove(u8),
    ArrPush(i64),
    ArrDelete(u8),
}

fn arb_actions() -> impl Strategy<Value = Vec<(bool, DocAction)>> {
    proptest::collection::vec(
        (
            any::<bool>(),
            prop_oneof![
                (0u8..4, -50i64..50).prop_map(|(k, v)| DocAction::Set(k, v)),
                (0u8..4).prop_map(DocAction::Remove),
                (-50i64..50).prop_map(DocAction::ArrPush),
                (0u8..4).prop_map(DocAction::ArrDelete),
            ],
        ),
        0..24,
    )
}

fn apply(doc: &mut JsonDoc, action: &DocAction) {
    match action {
        DocAction::Set(k, v) => {
            let key = format!("k{k}");
            doc.set(&["obj", &key], Value::from(*v)).unwrap();
        }
        DocAction::Remove(k) => {
            let key = format!("k{k}");
            doc.remove(&["obj", &key]).unwrap();
        }
        DocAction::ArrPush(v) => {
            doc.arr_push(&["list"], Value::from(*v)).unwrap();
        }
        DocAction::ArrDelete(idx) => {
            // Deleting out of bounds is a failed op; skip instead.
            let len = doc
                .get(&["list"])
                .and_then(|j| j.as_array().map(<[Value]>::len))
                .unwrap_or(0);
            if (*idx as usize) < len {
                doc.arr_delete(&["list"], *idx as usize).unwrap();
            }
        }
    }
}

proptest! {
    /// Two replicas edit concurrently; after a bidirectional sync their
    /// documents are identical.
    #[test]
    fn concurrent_sessions_converge(actions in arb_actions()) {
        let mut a = JsonDoc::new(ReplicaId::new(0));
        a.new_array(&["list"]).unwrap();
        let mut b = JsonDoc::new(ReplicaId::new(1));
        b.sync_from(&a);

        for (at_a, action) in &actions {
            if *at_a {
                apply(&mut a, action);
            } else {
                apply(&mut b, action);
            }
        }
        // Anti-entropy both ways, twice (second round covers ops created
        // after the first exchange's version snapshots).
        let snap_a = a.clone();
        b.sync_from(&snap_a);
        a.sync_from(&b.clone());
        b.sync_from(&a.clone());
        prop_assert_eq!(a.root(), b.root());
    }

    /// Syncing is idempotent: repeating the final exchange changes nothing.
    #[test]
    fn sync_is_idempotent(actions in arb_actions()) {
        let mut a = JsonDoc::new(ReplicaId::new(0));
        a.new_array(&["list"]).unwrap();
        let mut b = JsonDoc::new(ReplicaId::new(1));
        b.sync_from(&a);
        for (at_a, action) in &actions {
            if *at_a {
                apply(&mut a, action);
            } else {
                apply(&mut b, action);
            }
        }
        b.sync_from(&a.clone());
        let settled = b.root();
        b.sync_from(&a.clone());
        prop_assert_eq!(b.root(), settled);
    }

    /// Delivery through a third replica (relay) yields the same document as
    /// direct delivery.
    #[test]
    fn relay_equals_direct(actions in arb_actions()) {
        let mut a = JsonDoc::new(ReplicaId::new(0));
        a.new_array(&["list"]).unwrap();
        for (_, action) in &actions {
            apply(&mut a, action);
        }
        let mut direct = JsonDoc::new(ReplicaId::new(1));
        direct.sync_from(&a);
        let mut relay = JsonDoc::new(ReplicaId::new(2));
        relay.sync_from(&a);
        let mut via = JsonDoc::new(ReplicaId::new(1));
        via.sync_from(&relay);
        prop_assert_eq!(direct.root(), via.root());
    }
}

//! The pre-replay lint pass: static detection of the five misconception
//! patterns of the paper's Table 2.
//!
//! Replay *proves* a misconception by finding an interleaving that violates
//! an assertion; the lints *flag* the structural pattern that makes such an
//! interleaving possible — directly on the recorded trace, before a single
//! replay runs. Each diagnostic carries full event provenance so the
//! developer can inspect the exact racing events.
//!
//! | # | Misconception | Pattern flagged |
//! |---|---|---|
//! | 1 | causal delivery | racing deliveries into one replica from concurrent origins |
//! | 2 | list order consistency | concurrent list/log edits at different replicas |
//! | 3 | move without duplication | unsafe move ops, or racing remove+re-add of one element |
//! | 4 | sequential ids | concurrent id minting at different replicas |
//! | 5 | coordination-free | a replica observes or overwrites state while a delivery races in |

use serde::{Deserialize, Serialize};

use er_pi_model::{Event, EventId, EventKind, ReplicaId, Workload};
use er_pi_rdl::{CrdtType, OpKind, OpProfile};

use crate::hb::HbGraph;

/// The structural pattern a [`Diagnostic`] flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintPattern {
    /// Two deliveries into one replica whose origins are concurrent
    /// (misconception 1: *the network delivers causally*).
    RacingDeliveries,
    /// Concurrent RGA inserts or log appends at different replicas
    /// (misconception 2: *replicas agree on list order*).
    ConcurrentListEdits,
    /// An unsafe move operation, or a racing remove/re-add of one element
    /// (misconception 3: *moves cannot duplicate*).
    ConcurrentMoves,
    /// Concurrent id-minting updates (misconception 4: *ids are sequential*).
    RacingIdMint,
    /// An observation or last-writer-wins write racing a delivery into the
    /// same replica (misconception 5: *no coordination is ever needed*).
    UncoordinatedObserver,
    /// An unsound or vacuous entry in the commutativity table, or an
    /// independence declaration the certified table contradicts. Not a
    /// Table 2 misconception (number 0): it flags the *analysis inputs*
    /// rather than the workload, and is raised by the bounded certifier
    /// ([`crate::certify_table`]) and its validators.
    IndependenceSoundness,
}

impl LintPattern {
    /// The Table 2 misconception number (1–5) this pattern witnesses, or 0
    /// for [`LintPattern::IndependenceSoundness`] findings, which audit the
    /// analysis tables rather than the workload.
    pub fn misconception(self) -> u8 {
        match self {
            LintPattern::RacingDeliveries => 1,
            LintPattern::ConcurrentListEdits => 2,
            LintPattern::ConcurrentMoves => 3,
            LintPattern::RacingIdMint => 4,
            LintPattern::UncoordinatedObserver => 5,
            LintPattern::IndependenceSoundness => 0,
        }
    }

    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LintPattern::RacingDeliveries => "racing-deliveries",
            LintPattern::ConcurrentListEdits => "concurrent-list-edits",
            LintPattern::ConcurrentMoves => "concurrent-moves",
            LintPattern::RacingIdMint => "racing-id-mint",
            LintPattern::UncoordinatedObserver => "uncoordinated-observer",
            LintPattern::IndependenceSoundness => "independence-soundness",
        }
    }
}

/// One pre-replay diagnostic with event provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Table 2 misconception number (1–5), or 0 for independence-soundness
    /// findings.
    pub misconception: u8,
    /// The flagged pattern.
    pub pattern: LintPattern,
    /// Human-readable description naming the racing events.
    pub message: String,
    /// The involved events, most relevant first.
    pub events: Vec<EventId>,
    /// The replica where the hazard lands.
    pub replica: ReplicaId,
}

/// A delivery of remote effects into `to`: a `SyncExec` (origin = its send)
/// or a fused `Sync` (origin = the sync event itself, at the sender).
struct Delivery {
    event: EventId,
    origin: EventId,
    from: ReplicaId,
    to: ReplicaId,
}

fn deliveries(workload: &Workload) -> Vec<Delivery> {
    workload
        .events()
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::SyncExec { from, send } => Some(Delivery {
                event: ev.id,
                origin: send,
                from,
                to: ev.replica,
            }),
            EventKind::Sync { to, .. } => Some(Delivery {
                event: ev.id,
                origin: ev.id,
                from: ev.replica,
                to,
            }),
            _ => None,
        })
        .collect()
}

fn diag(
    pattern: LintPattern,
    replica: ReplicaId,
    events: Vec<EventId>,
    message: String,
) -> Diagnostic {
    Diagnostic {
        misconception: pattern.misconception(),
        pattern,
        message,
        events,
        replica,
    }
}

/// Runs all five lints over the recorded trace.
pub(crate) fn lint(
    workload: &Workload,
    hb: &HbGraph,
    profiles: &[Option<OpProfile>],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let events = workload.events();
    let incoming = deliveries(workload);
    let profiled: Vec<(&Event, &OpProfile)> = events
        .iter()
        .filter_map(|ev| profiles[ev.id.index()].as_ref().map(|p| (ev, p)))
        .collect();

    // #1 — racing deliveries: two deliveries into one replica from
    // different senders whose origins are concurrent. Nothing orders the
    // two arrivals, so the receiver cannot assume causal delivery.
    for (i, a) in incoming.iter().enumerate() {
        for b in &incoming[i + 1..] {
            if a.to == b.to && a.from != b.from && hb.concurrent(a.origin, b.origin) {
                out.push(diag(
                    LintPattern::RacingDeliveries,
                    a.to,
                    vec![a.origin, b.origin, a.event, b.event],
                    format!(
                        "deliveries {} and {} race into {}: their origins {} and {} \
                         are concurrent, so arrival order is not causal",
                        a.event,
                        b.event,
                        a.to,
                        events[a.origin.index()],
                        events[b.origin.index()],
                    ),
                ));
            }
        }
    }

    // #2 — concurrent list/log edits: the merged order of concurrent RGA
    // inserts (or log appends) is decided by the CRDT's internal tie-break,
    // not by any order the replicas agree on.
    for (i, &(ea, pa)) in profiled.iter().enumerate() {
        for &(eb, pb) in &profiled[i + 1..] {
            let list_pair = matches!(
                (pa.crdt, &pa.kind, pb.crdt, &pb.kind),
                (
                    CrdtType::Rga,
                    OpKind::Insert { .. },
                    CrdtType::Rga,
                    OpKind::Insert { .. }
                ) | (
                    CrdtType::MerkleLog,
                    OpKind::Append,
                    CrdtType::MerkleLog,
                    OpKind::Append
                )
            );
            if list_pair && ea.replica != eb.replica && hb.concurrent(ea.id, eb.id) {
                out.push(diag(
                    LintPattern::ConcurrentListEdits,
                    ea.replica,
                    vec![ea.id, eb.id],
                    format!(
                        "concurrent list edits {ea} and {eb}: replicas will not \
                         agree on element order without coordination",
                    ),
                ));
            }
        }
    }

    // #3a — a move implemented as delete + re-insert duplicates under
    // concurrency; the unsafe variant is flagged outright.
    for &(ev, p) in &profiled {
        if p.kind == (OpKind::Move { safe: false }) {
            out.push(diag(
                LintPattern::ConcurrentMoves,
                ev.replica,
                vec![ev.id],
                format!(
                    "{ev} moves by delete + re-insert: a concurrent move of the \
                     same element duplicates it",
                ),
            ));
        }
    }
    // #3b — app-level move races: two concurrent removes of the same
    // element at different replicas, each followed by a local re-add.
    for (i, &(ea, pa)) in profiled.iter().enumerate() {
        let OpKind::Remove { element: Some(el) } = &pa.kind else {
            continue;
        };
        for &(eb, pb) in &profiled[i + 1..] {
            if pb.kind != pa.kind || pb.crdt != pa.crdt {
                continue;
            }
            if ea.replica == eb.replica || !hb.concurrent(ea.id, eb.id) {
                continue;
            }
            let readd_after = |rm: &Event| {
                profiled.iter().find(|(e, p)| {
                    e.replica == rm.replica
                        && e.id > rm.id
                        && p.crdt == pa.crdt
                        && matches!(p.kind, OpKind::Add { .. })
                })
            };
            if let (Some(&(aa, _)), Some(&(ab, _))) = (readd_after(ea), readd_after(eb)) {
                out.push(diag(
                    LintPattern::ConcurrentMoves,
                    ea.replica,
                    vec![ea.id, aa.id, eb.id, ab.id],
                    format!(
                        "racing moves of {el}: {ea} and {eb} concurrently remove \
                         it and both replicas re-add it ({aa}, {ab})",
                    ),
                ));
            }
        }
    }

    // #4 — concurrent id minting: both replicas derive the "next" id from
    // local state, so the ids collide once the states merge.
    for (i, &(ea, pa)) in profiled.iter().enumerate() {
        for &(eb, pb) in &profiled[i + 1..] {
            if pa.kind == OpKind::MintId && pb.kind == OpKind::MintId && hb.concurrent(ea.id, eb.id)
            {
                out.push(diag(
                    LintPattern::RacingIdMint,
                    ea.replica,
                    vec![ea.id, eb.id],
                    format!("{ea} and {eb} mint ids concurrently: the ids can collide"),
                ));
            }
        }
    }

    // #5 — uncoordinated observation: a replica reads, transmits, or
    // last-writer-overwrites its state while a delivery into that replica
    // is still in flight (origin concurrent with the observation).
    for ev in events {
        let observes = match &ev.kind {
            EventKind::External { .. } => true,
            EventKind::LocalUpdate { .. } => matches!(
                profiles[ev.id.index()].as_ref().map(|p| &p.kind),
                Some(OpKind::Read) | Some(OpKind::Write { .. })
            ),
            _ => false,
        };
        if !observes {
            continue;
        }
        for d in &incoming {
            if d.to == ev.replica && hb.concurrent(ev.id, d.origin) {
                out.push(diag(
                    LintPattern::UncoordinatedObserver,
                    ev.replica,
                    vec![ev.id, d.origin, d.event],
                    format!(
                        "{ev} acts on {} while delivery {} from {} races in: the \
                         outcome depends on arrival order",
                        ev.replica,
                        events[d.event.index()],
                        d.from,
                    ),
                ));
            }
        }
    }

    out.sort_by_key(|d| (d.events.first().copied(), d.misconception));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use er_pi_model::{Value, Workload};

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn racing_split_deliveries_flag_misconception_1() {
        // Roshi's causal-delivery seed: two writers' syncs race into r0.
        let mut w = Workload::builder();
        let i1 = w.update(
            r(1),
            "insert",
            [Value::from("k"), Value::from("m"), Value::from(50)],
        );
        let d2 = w.update(
            r(2),
            "delete",
            [Value::from("k"), Value::from("m"), Value::from(50)],
        );
        w.sync_split(r(1), r(0), Some(i1));
        w.sync_split(r(2), r(0), Some(d2));
        let analysis = analyze(&w.build());
        let hits = analysis.diagnostics_for(1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].replica, r(0));
        assert_eq!(hits[0].pattern, LintPattern::RacingDeliveries);
    }

    #[test]
    fn ordered_deliveries_do_not_flag() {
        let mut w = Workload::builder();
        let u = w.update(
            r(1),
            "insert",
            [Value::from("k"), Value::from("m"), Value::from(1)],
        );
        let (_, exec) = w.sync_split(r(1), r(0), Some(u));
        let v = w.update(
            r(2),
            "insert",
            [Value::from("k"), Value::from("n"), Value::from(2)],
        );
        w.depends(v, exec);
        w.sync_split(r(2), r(0), Some(v));
        let analysis = analyze(&w.build());
        assert!(
            analysis.diagnostics_for(1).is_empty(),
            "origins are causally ordered"
        );
    }

    #[test]
    fn concurrent_appends_flag_misconception_2() {
        let mut w = Workload::builder();
        w.update(r(1), "append", [Value::from("from-1")]);
        w.update(r(2), "append", [Value::from("from-2")]);
        let analysis = analyze(&w.build());
        assert!(!analysis.diagnostics_for(2).is_empty());
    }

    #[test]
    fn unsafe_move_flags_misconception_3() {
        let mut w = Workload::builder();
        w.update(r(0), "list_push", [Value::from(10)]);
        let mv = w.update(r(0), "list_move_naive", [Value::from(0), Value::from(1)]);
        let analysis = analyze(&w.build());
        let hits = analysis.diagnostics_for(3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].events, vec![mv]);
    }

    #[test]
    fn racing_remove_readd_flags_misconception_3() {
        // Roshi's app-level move: both replicas delete item:p0 and re-add
        // it under a new position suffix.
        let mut w = Workload::builder();
        let base = w.update(
            r(0),
            "insert",
            [Value::from("k"), Value::from("item:p0"), Value::from(10)],
        );
        w.sync_pair(r(0), r(1), base);
        w.update(
            r(0),
            "delete",
            [Value::from("k"), Value::from("item:p0"), Value::from(20)],
        );
        w.update(
            r(0),
            "insert",
            [Value::from("k"), Value::from("item:p1"), Value::from(21)],
        );
        w.update(
            r(1),
            "delete",
            [Value::from("k"), Value::from("item:p0"), Value::from(30)],
        );
        w.update(
            r(1),
            "insert",
            [Value::from("k"), Value::from("item:p2"), Value::from(31)],
        );
        let analysis = analyze(&w.build());
        assert!(!analysis.diagnostics_for(3).is_empty());
    }

    #[test]
    fn concurrent_id_minting_flags_misconception_4() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "todo_create", [Value::from("buy milk")]);
        let b = w.update(r(1), "todo_create", [Value::from("walk dog")]);
        let analysis = analyze(&w.build());
        let hits = analysis.diagnostics_for(4);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].events, vec![a, b]);
        assert_eq!(hits[0].pattern.name(), "racing-id-mint");
    }

    #[test]
    fn uncoordinated_read_flags_misconception_5() {
        // Roshi's coordination-free seed: r0 serves a page while two syncs
        // race in.
        let mut w = Workload::builder();
        let i1 = w.update(
            r(1),
            "insert",
            [Value::from("k"), Value::from("x"), Value::from(10)],
        );
        let i2 = w.update(
            r(2),
            "insert",
            [Value::from("k"), Value::from("y"), Value::from(20)],
        );
        w.sync_pair(r(1), r(0), i1);
        w.sync_pair(r(2), r(0), i2);
        w.update(r(0), "select", [Value::from("k")]);
        let analysis = analyze(&w.build());
        let hits = analysis.diagnostics_for(5);
        assert_eq!(hits.len(), 2, "one per racing delivery");
        assert!(hits.iter().all(|d| d.replica == r(0)));
    }

    #[test]
    fn coordinated_read_does_not_flag() {
        let mut w = Workload::builder();
        let i1 = w.update(
            r(1),
            "insert",
            [Value::from("k"), Value::from("x"), Value::from(10)],
        );
        let (_, exec) = w.sync_split(r(1), r(0), Some(i1));
        let sel = w.update(r(0), "select", [Value::from("k")]);
        w.depends(sel, exec);
        let analysis = analyze(&w.build());
        assert!(analysis.diagnostics_for(5).is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_by_first_event() {
        let mut w = Workload::builder();
        w.update(r(0), "todo_create", [Value::from("a")]);
        w.update(r(1), "todo_create", [Value::from("b")]);
        w.update(r(0), "append", [Value::from("x")]);
        w.update(r(1), "append", [Value::from("y")]);
        let analysis = analyze(&w.build());
        let firsts: Vec<EventId> = analysis.diagnostics.iter().map(|d| d.events[0]).collect();
        let mut sorted = firsts.clone();
        sorted.sort();
        assert_eq!(firsts, sorted);
    }
}

//! Static commutativity & conflict analysis over recorded traces.
//!
//! The paper's Algorithm 3 (event-independence pruning) is parameterized by
//! a developer-declared set of mutually independent events plus an
//! interference relation `R(ev, iev)`. Declaring those by hand is both
//! tedious and risky: an over-eager declaration merges interleavings that
//! can differ, silently hiding bugs. This crate derives both relations
//! *statically* from the recorded [`Workload`] — no replay required:
//!
//! 1. **Happens-before** ([`TraceAnalysis::happens_before`]): every event is
//!    assigned a [`VersionVector`] built from program order (same-replica
//!    recording order), the implicit dependencies of sync events, and
//!    explicit `depends` edges. Two events are *concurrent* when neither
//!    clock dominates the other.
//! 2. **Commutativity** ([`er_pi_rdl::OpProfile`]): every local update is
//!    mapped to an abstract operation profile (which RDL type family it
//!    touches and what it does), and pairs are classified against the
//!    per-type commutativity tables in `er-pi-rdl`.
//! 3. **Derivation** ([`analyze`]): the `independent` and `interferes`
//!    relations are derived *in Datalog* (semi-naive evaluation over the
//!    base facts extracted in steps 1–2; see [`analysis_rules`]), read back
//!    out, and packaged as the exact inputs
//!    `er_pi_interleave::independence_canonical` consumes.
//! 4. **Lints** ([`TraceAnalysis::diagnostics`]): the five misconception
//!    patterns of the paper's Table 2 are flagged on the static trace,
//!    before any replay, with full event provenance.
//!
//! # Soundness
//!
//! The derived relations never merge two interleavings that can differ in
//! final state (or in per-event outcomes). The argument has two layers.
//!
//! **Mechanical layer.** The independence filter merges orders that differ
//! only in the relative placement of the declared events among the
//! positions they jointly occupy; every other event keeps its position, and
//! merging is suppressed whenever an interfering event sits inside the
//! span. The derived set contains only local updates that are pairwise
//! concurrent *or* same-replica commuting; concurrent updates execute at
//! distinct replicas (program order makes same-replica events ordered), so
//! they touch disjoint entries of the replica-state vector. The derived
//! interference relation marks, for each member `y`, every event that can
//! observe or transport `y`'s replica state: synchronizations whose
//! endpoints include `y`'s replica, external/observing events at `y`'s
//! replica, and any other update at `y`'s replica. Consequently, inside a
//! merged span, no event reads or writes a member's replica except the
//! members themselves — every replica's event subsequence is identical
//! across the merged orders, so the per-replica state trajectories, the
//! per-event outcomes, and the final states coincide.
//!
//! **Semantic layer.** On top of the mechanical argument, a pair only
//! enters the independent set when the per-type commutativity table of
//! `er-pi-rdl` approves it (counters commute; same-element OR-set
//! add/remove conflict; concurrent RGA inserts conflict; equal-timestamp
//! LWW writes conflict on tie-break; sequential-ID creation never
//! commutes). That table is itself checked: the bounded certifier
//! ([`certify_table`]) replays every claim in both orders against the real
//! `er-pi-rdl` types and demands convergence for "commutes" entries and a
//! concrete divergence witness for every conflict reason.
//! This second gate is deliberately conservative — it protects
//! workloads whose sync timing is implicit in the model (LWW tie-breaks,
//! log orders) and keeps the derived relation aligned with the paper's
//! semantic notion of independence. Conservatism cannot cause unsoundness:
//! shrinking the independent set and growing the interference relation
//! only *reduces* merging.
//!
//! ```
//! use er_pi_analysis::analyze;
//! use er_pi_model::{ReplicaId, Value, Workload};
//!
//! // Two concurrent counter increments at different replicas, then a sync.
//! let mut w = Workload::builder();
//! let a = w.update(ReplicaId::new(0), "counter_inc", [Value::from(1)]);
//! let b = w.update(ReplicaId::new(1), "counter_inc", [Value::from(2)]);
//! w.sync_pair(ReplicaId::new(0), ReplicaId::new(1), a);
//! let analysis = analyze(&w.build());
//!
//! assert_eq!(analysis.independence.sets, vec![vec![a, b]]);
//! assert!(analysis.concurrent(a, b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod certify;
mod derive;
mod hb;
mod lint;
mod vocab;

pub use audit::{
    certify_table, certify_table_with, validate_independence, validate_table, CertBounds,
    CertClaim, CertSummary, CertifiedTable, Verdict,
};
pub use certify::{family_name, kind_sig, CertWitness, PairEvidence};
pub use derive::{analysis_rules, DerivedIndependence};
pub use hb::HbGraph;
pub use lint::{Diagnostic, LintPattern};
pub use vocab::interpret_op;

use er_pi_datalog::Database;
use er_pi_interleave::PruningConfig;
use er_pi_model::{EventId, VersionVector, Workload};
use er_pi_rdl::OpProfile;

/// The complete result of one static analysis pass over a recorded trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    hb: HbGraph,
    profiles: Vec<Option<OpProfile>>,
    /// The auto-derived independence relation (Algorithm 3 inputs).
    pub independence: DerivedIndependence,
    /// Misconception lints, in event order of their first involved event.
    pub diagnostics: Vec<Diagnostic>,
    db: Database,
}

impl TraceAnalysis {
    /// Returns `true` when `a` happened before `b` in the recorded trace.
    pub fn happens_before(&self, a: EventId, b: EventId) -> bool {
        self.hb.happens_before(a, b)
    }

    /// Returns `true` when neither event happened before the other.
    pub fn concurrent(&self, a: EventId, b: EventId) -> bool {
        self.hb.concurrent(a, b)
    }

    /// The per-event vector clock assigned by the happens-before pass.
    pub fn clock(&self, event: EventId) -> &VersionVector {
        self.hb.clock(event)
    }

    /// The operation profile extracted for `event` (`None` for sync and
    /// external events, and for updates whose vocabulary is unknown).
    pub fn profile(&self, event: EventId) -> Option<&OpProfile> {
        self.profiles.get(event.index()).and_then(|p| p.as_ref())
    }

    /// The deductive database holding the base facts (`hb_edge`,
    /// `concurrent`, `co_replica`, `commutes`, `conflicts`, `upd`,
    /// `opaque`, `observer`, `sync_touch`, `ev_replica`) and the relations
    /// derived from them (`hb`, `independent`, `ind`, `interferes`).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Packages the derived relations as a [`PruningConfig`] fragment —
    /// exactly what a developer would otherwise declare by hand.
    pub fn to_pruning_config(&self) -> PruningConfig {
        let mut config = PruningConfig::default();
        for set in &self.independence.sets {
            config = config.with_independent_set(set.clone());
        }
        for &(x, y) in &self.independence.interference {
            config = config.with_interference(x, y);
        }
        config
    }

    /// Diagnostics matching one Table 2 misconception number (1–5).
    pub fn diagnostics_for(&self, misconception: u8) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.misconception == misconception)
            .collect()
    }
}

/// Runs the full static pass over `workload`: happens-before construction,
/// commutativity classification, Datalog derivation of the
/// independence/interference relations, and the misconception lints.
pub fn analyze(workload: &Workload) -> TraceAnalysis {
    let hb = HbGraph::build(workload);
    let profiles: Vec<Option<OpProfile>> = workload
        .events()
        .iter()
        .map(|ev| ev.op().and_then(interpret_op))
        .collect();
    let (db, independence) = derive::derive(workload, &hb, &profiles);
    let diagnostics = lint::lint(workload, &hb, &profiles);
    TraceAnalysis {
        hb,
        profiles,
        independence,
        diagnostics,
        db,
    }
}

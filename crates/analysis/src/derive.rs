//! Datalog derivation of the independence set and interference relation.
//!
//! The happens-before and commutativity passes produce *base facts*; the
//! derivation itself is expressed as Datalog rules ([`analysis_rules`]) and
//! evaluated bottom-up (semi-naive) to fixpoint, mirroring how the paper
//! keeps its pruning logic in the deductive database. The derived
//! `independent` pairs and `interferes` relation are then read back out and
//! packaged for `er_pi_interleave::independence_canonical`.
//!
//! # Base facts
//!
//! | Relation | Meaning |
//! |---|---|
//! | `hb_edge(A, B)` | direct happens-before edge (program order or dep) |
//! | `concurrent(A, B)` | neither clock dominates (both directions) |
//! | `co_replica(A, B)` | distinct updates recorded at the same replica |
//! | `commutes(A, B)` | both profiles known and the table approves the swap |
//! | `conflicts(A, B)` | both profiles known and the table rejects the swap |
//! | `upd(E)` | local update with a known, non-`Read` profile |
//! | `opaque(E)` | local update whose vocabulary is unknown |
//! | `observer(E)` | external event or `Read`-profile update |
//! | `sync_touch(E, R)` | sync event `E` has endpoint replica `R` |
//! | `ev_replica(E, R)` | event `E` executes at replica `R` |
//!
//! # Derived relations
//!
//! * `hb(A, B)` — transitive happens-before closure,
//! * `independent(A, B)` — the pair may be swapped: commuting updates that
//!   are concurrent or co-located on one replica,
//! * `ind(E)` — `E` participates in some independent pair,
//! * `interferes(X, Y)` — `X` is the `R(ev, iev)` relation of Algorithm 3:
//!   it can observe or transport the replica state that independent event
//!   `Y` mutates, so it blocks merging when it sits inside the span.

use std::collections::{BTreeMap, BTreeSet};

use er_pi_datalog::{atom, evaluate, fact, var, CmpOp, Const, Database, Rule};
use er_pi_model::{EventId, Workload};
use er_pi_rdl::{OpKind, OpProfile};

use crate::hb::HbGraph;

/// The auto-derived inputs of Algorithm 3: mutually independent event sets
/// plus the interference relation `R(ev, iev)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DerivedIndependence {
    /// Maximal cliques of pairwise-independent update events (ascending by
    /// id, singletons dropped).
    pub sets: Vec<Vec<EventId>>,
    /// Pairs `(x, y)`: event `x` interferes with independent event `y`.
    pub interference: Vec<(EventId, EventId)>,
}

/// The Datalog program deriving `hb`, `independent`, `ind`, and
/// `interferes` from the base facts extracted by the static passes.
pub fn analysis_rules() -> Vec<Rule> {
    vec![
        // hb(A, B) :- hb_edge(A, B).
        Rule::new(atom("hb", [var("A"), var("B")])).when(atom("hb_edge", [var("A"), var("B")])),
        // hb(A, C) :- hb(A, B), hb_edge(B, C).
        Rule::new(atom("hb", [var("A"), var("C")]))
            .when(atom("hb", [var("A"), var("B")]))
            .when(atom("hb_edge", [var("B"), var("C")])),
        // independent(A, B) :- concurrent(A, B), commutes(A, B),
        //                      upd(A), upd(B).
        Rule::new(atom("independent", [var("A"), var("B")]))
            .when(atom("concurrent", [var("A"), var("B")]))
            .when(atom("commutes", [var("A"), var("B")]))
            .when(atom("upd", [var("A")]))
            .when(atom("upd", [var("B")])),
        // independent(A, B) :- co_replica(A, B), commutes(A, B),
        //                      upd(A), upd(B).
        Rule::new(atom("independent", [var("A"), var("B")]))
            .when(atom("co_replica", [var("A"), var("B")]))
            .when(atom("commutes", [var("A"), var("B")]))
            .when(atom("upd", [var("A")]))
            .when(atom("upd", [var("B")])),
        // ind(E) :- independent(E, B).
        Rule::new(atom("ind", [var("E")])).when(atom("independent", [var("E"), var("B")])),
        // interferes(X, Y) :- ind(Y), ev_replica(Y, R), sync_touch(X, R).
        Rule::new(atom("interferes", [var("X"), var("Y")]))
            .when(atom("ind", [var("Y")]))
            .when(atom("ev_replica", [var("Y"), var("R")]))
            .when(atom("sync_touch", [var("X"), var("R")])),
        // interferes(X, Y) :- ind(Y), ev_replica(Y, R), observer(X),
        //                     ev_replica(X, R).
        Rule::new(atom("interferes", [var("X"), var("Y")]))
            .when(atom("ind", [var("Y")]))
            .when(atom("ev_replica", [var("Y"), var("R")]))
            .when(atom("observer", [var("X")]))
            .when(atom("ev_replica", [var("X"), var("R")])),
        // interferes(X, Y) :- ind(Y), ev_replica(Y, R), upd(X),
        //                     ev_replica(X, R), X != Y.
        Rule::new(atom("interferes", [var("X"), var("Y")]))
            .when(atom("ind", [var("Y")]))
            .when(atom("ev_replica", [var("Y"), var("R")]))
            .when(atom("upd", [var("X")]))
            .when(atom("ev_replica", [var("X"), var("R")]))
            .filter(var("X"), CmpOp::Ne, var("Y")),
        // interferes(X, Y) :- ind(Y), conflicts(X, Y).
        Rule::new(atom("interferes", [var("X"), var("Y")]))
            .when(atom("ind", [var("Y")]))
            .when(atom("conflicts", [var("X"), var("Y")])),
        // interferes(X, Y) :- ind(Y), opaque(X).
        // An update outside the vocabulary may observe anything (ReplicaDB's
        // read_batch reads the *source* replica from the sink side), so it
        // conservatively interferes with every independent event.
        Rule::new(atom("interferes", [var("X"), var("Y")]))
            .when(atom("ind", [var("Y")]))
            .when(atom("opaque", [var("X")])),
    ]
}

fn eid(c: &Const) -> EventId {
    match c {
        Const::Int(i) => EventId::new(u32::try_from(*i).expect("event id fits u32")),
        Const::Str(s) => panic!("expected event id, got {s:?}"),
    }
}

/// Loads the base facts for `workload`, runs [`analysis_rules`] to fixpoint,
/// and reads the derived relations back out.
pub(crate) fn derive(
    workload: &Workload,
    hb: &HbGraph,
    profiles: &[Option<OpProfile>],
) -> (Database, DerivedIndependence) {
    let mut db = Database::new();
    let events = workload.events();

    for ev in events {
        db.insert(fact("ev_replica", [ev.id.index(), ev.replica.index()]));
        if let Some((from, to)) = ev.sync_endpoints() {
            db.insert(fact("sync_touch", [ev.id.index(), from.index()]));
            db.insert(fact("sync_touch", [ev.id.index(), to.index()]));
        }
        match &profiles[ev.id.index()] {
            Some(p) if p.kind == OpKind::Read => {
                db.insert(fact("observer", [ev.id.index()]));
            }
            Some(_) => {
                db.insert(fact("upd", [ev.id.index()]));
            }
            None if ev.is_update() => {
                db.insert(fact("opaque", [ev.id.index()]));
            }
            None if !ev.is_sync() => {
                db.insert(fact("observer", [ev.id.index()]));
            }
            None => {}
        }
    }
    for &(a, b) in hb.edges() {
        db.insert(fact("hb_edge", [a.index(), b.index()]));
    }

    // Pairwise facts between profiled updates: concurrency, co-location,
    // and the commutativity verdicts.
    let updates: Vec<EventId> = events
        .iter()
        .filter(|ev| matches!(&profiles[ev.id.index()], Some(p) if p.kind != OpKind::Read))
        .map(|ev| ev.id)
        .collect();
    // Recorded workloads repeat the same few (family, op-kind, args)
    // shapes over and over, so the quadratic loop would re-consult the
    // commutativity table with identical inputs per *event* pair. Dedupe
    // the profiles into equality classes first (OpProfile is `PartialEq`
    // but not `Hash` — `Value` arguments preclude hashing — so class
    // lookup is a linear scan over the handful of distinct shapes) and
    // memoize one table verdict per unordered class pair.
    let mut classes: Vec<&OpProfile> = Vec::new();
    let class_of: Vec<usize> = updates
        .iter()
        .map(|&e| {
            let p = profiles[e.index()].as_ref().expect("profiled");
            classes.iter().position(|c| *c == p).unwrap_or_else(|| {
                classes.push(p);
                classes.len() - 1
            })
        })
        .collect();
    let mut verdicts: Vec<Option<bool>> = vec![None; classes.len() * classes.len()];
    for (i, &a) in updates.iter().enumerate() {
        for (j, &b) in updates.iter().enumerate().skip(i + 1) {
            if hb.concurrent(a, b) {
                db.insert(fact("concurrent", [a.index(), b.index()]));
                db.insert(fact("concurrent", [b.index(), a.index()]));
            }
            if events[a.index()].replica == events[b.index()].replica {
                db.insert(fact("co_replica", [a.index(), b.index()]));
                db.insert(fact("co_replica", [b.index(), a.index()]));
            }
            let (ca, cb) = (class_of[i], class_of[j]);
            let commutes = *verdicts[ca * classes.len() + cb]
                .get_or_insert_with(|| classes[ca].commutes_with(classes[cb]).is_none());
            let rel = if commutes { "commutes" } else { "conflicts" };
            db.insert(fact(rel, [a.index(), b.index()]));
            db.insert(fact(rel, [b.index(), a.index()]));
        }
    }

    evaluate(&analysis_rules(), &mut db);

    // Read back the symmetric `independent` relation as an adjacency map.
    let mut adjacent: BTreeMap<EventId, BTreeSet<EventId>> = BTreeMap::new();
    for tuple in db.relation("independent") {
        let (a, b) = (eid(&tuple[0]), eid(&tuple[1]));
        adjacent.entry(a).or_default().insert(b);
    }

    // Greedy clique partition in ascending id order: deterministic, and the
    // id order is exactly the canonical-representative order Algorithm 3
    // keeps. Singletons merge nothing, so they are dropped.
    let mut assigned: BTreeSet<EventId> = BTreeSet::new();
    let mut sets: Vec<Vec<EventId>> = Vec::new();
    for &seed in adjacent.keys() {
        if assigned.contains(&seed) {
            continue;
        }
        let mut clique = vec![seed];
        for (&candidate, peers) in adjacent.range(seed..).skip(1) {
            if !assigned.contains(&candidate) && clique.iter().all(|m| peers.contains(m)) {
                clique.push(candidate);
            }
        }
        if clique.len() >= 2 {
            assigned.extend(clique.iter().copied());
            sets.push(clique);
        }
    }

    // Interference pairs, restricted to members of the kept sets. Pairs
    // within one set are dropped: the canonical check skips co-members, and
    // a set's own updates reorder soundly by construction. A member of a
    // *different* set stays — it is an ordinary interferer for this set.
    let set_of: BTreeMap<EventId, usize> = sets
        .iter()
        .enumerate()
        .flat_map(|(i, set)| set.iter().map(move |&m| (m, i)))
        .collect();
    let mut interference: Vec<(EventId, EventId)> = db
        .relation("interferes")
        .into_iter()
        .map(|tuple| (eid(&tuple[0]), eid(&tuple[1])))
        .filter(|(x, y)| match (set_of.get(x), set_of.get(y)) {
            (_, None) => false,
            (Some(sx), Some(sy)) => sx != sy,
            (None, Some(_)) => true,
        })
        .collect();
    interference.sort_unstable();
    interference.dedup();

    (db, DerivedIndependence { sets, interference })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use er_pi_model::{ReplicaId, Value, Workload};

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn concurrent_commuting_updates_become_one_set() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "counter_inc", [Value::from(1)]);
        let b = w.update(r(1), "counter_inc", [Value::from(1)]);
        let c = w.update(r(2), "counter_dec", [Value::from(1)]);
        let analysis = analyze(&w.build());
        assert_eq!(analysis.independence.sets, vec![vec![a, b, c]]);
    }

    #[test]
    fn conflicting_pairs_are_kept_apart() {
        // Same-element OR-set add/remove at different replicas: the order
        // decides whether the remove wins, so no merging is allowed.
        let mut w = Workload::builder();
        w.update(r(0), "set_add", [Value::from("x")]);
        w.update(r(1), "set_remove", [Value::from("x")]);
        let analysis = analyze(&w.build());
        assert!(analysis.independence.sets.is_empty());
    }

    #[test]
    fn same_replica_commuting_updates_are_independent() {
        // The ReplicaDB pattern: three puts to disjoint keys at one replica.
        let mut w = Workload::builder();
        let p1 = w.update(r(0), "put", [Value::from(1), Value::from(10)]);
        let p2 = w.update(r(0), "put", [Value::from(2), Value::from(20)]);
        let p3 = w.update(r(0), "put", [Value::from(3), Value::from(30)]);
        let analysis = analyze(&w.build());
        assert_eq!(analysis.independence.sets, vec![vec![p1, p2, p3]]);
    }

    #[test]
    fn syncs_touching_a_member_replica_interfere() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "counter_inc", [Value::from(1)]);
        let b = w.update(r(1), "counter_inc", [Value::from(1)]);
        let s = w.sync_pair(r(0), r(2), a);
        let analysis = analyze(&w.build());
        assert_eq!(analysis.independence.sets, vec![vec![a, b]]);
        assert!(analysis.independence.interference.contains(&(s, a)));
        // The sync endpoints are replicas 0 and 2; it does not touch b's
        // replica 1, whose state it can neither observe nor transport.
        assert!(!analysis.independence.interference.contains(&(s, b)));
    }

    #[test]
    fn opaque_updates_interfere_with_everything() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "counter_inc", [Value::from(1)]);
        let b = w.update(r(1), "counter_inc", [Value::from(1)]);
        let x = w.update(r(2), "mystery_call", [Value::from(1)]);
        let analysis = analyze(&w.build());
        assert_eq!(analysis.independence.sets, vec![vec![a, b]]);
        assert!(analysis.independence.interference.contains(&(x, a)));
        assert!(analysis.independence.interference.contains(&(x, b)));
    }

    #[test]
    fn readers_at_a_member_replica_interfere() {
        let mut w = Workload::builder();
        let a = w.update(
            r(0),
            "insert",
            [Value::from("k"), Value::from("x"), Value::from(1)],
        );
        let b = w.update(
            r(1),
            "insert",
            [Value::from("k"), Value::from("y"), Value::from(2)],
        );
        let sel = w.update(r(0), "select", [Value::from("k")]);
        let ext = w.external(r(1), "report");
        let analysis = analyze(&w.build());
        assert_eq!(analysis.independence.sets, vec![vec![a, b]]);
        assert!(analysis.independence.interference.contains(&(sel, a)));
        assert!(analysis.independence.interference.contains(&(ext, b)));
    }

    #[test]
    fn program_ordered_conflicting_updates_never_pair() {
        // Two same-register writes at one replica conflict (LWW tie-break),
        // so even though they are co-located they must not merge.
        let mut w = Workload::builder();
        w.update(r(0), "reg_set", [Value::from(1)]);
        w.update(r(0), "reg_set", [Value::from(2)]);
        let analysis = analyze(&w.build());
        assert!(analysis.independence.sets.is_empty());
        assert!(analysis.independence.interference.is_empty());
    }

    #[test]
    fn database_exposes_base_and_derived_relations() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "counter_inc", [Value::from(1)]);
        let b = w.update(r(1), "counter_inc", [Value::from(1)]);
        let analysis = analyze(&w.build());
        let db = analysis.database();
        assert!(db.contains(&fact("independent", [a.index(), b.index()])));
        assert!(db.contains(&fact("independent", [b.index(), a.index()])));
        assert!(db.contains(&fact("ind", [a.index()])));
        assert!(db.contains(&fact("concurrent", [a.index(), b.index()])));
        assert!(db.contains(&fact("commutes", [a.index(), b.index()])));
        assert_eq!(db.relation_len("opaque"), 0);
    }

    #[test]
    fn memoized_verdicts_match_the_naive_table_walk() {
        // A workload that repeats a handful of op shapes across replicas —
        // the profile-class memo must produce exactly the facts a naive
        // per-event-pair table walk would, for every pair and direction.
        let mut w = Workload::builder();
        for rep in 0..3u16 {
            w.update(r(rep), "counter_inc", [Value::from(1)]);
            w.update(r(rep), "set_add", [Value::from("x")]);
            w.update(r(rep), "set_remove", [Value::from("x")]);
            w.update(r(rep), "put", [Value::from(i64::from(rep)), Value::from(1)]);
            w.update(r(rep), "reg_set", [Value::from(7)]);
        }
        let workload = w.build();
        let analysis = analyze(&workload);
        let db = analysis.database();

        let profiled: Vec<_> = workload
            .events()
            .iter()
            .filter_map(|ev| {
                let p = analysis.profile(ev.id)?;
                (p.kind != er_pi_rdl::OpKind::Read).then(|| (ev.id, p.clone()))
            })
            .collect();
        assert!(profiled.len() >= 15, "workload must exercise repetition");
        for (i, (a, pa)) in profiled.iter().enumerate() {
            for (b, pb) in &profiled[i + 1..] {
                let rel = if pa.commutes_with(pb).is_none() {
                    "commutes"
                } else {
                    "conflicts"
                };
                let anti = if rel == "commutes" {
                    "conflicts"
                } else {
                    "commutes"
                };
                for (x, y) in [(a, b), (b, a)] {
                    assert!(
                        db.contains(&fact(rel, [x.index(), y.index()])),
                        "missing {rel}({x:?}, {y:?})"
                    );
                    assert!(
                        !db.contains(&fact(anti, [x.index(), y.index()])),
                        "contradictory {anti}({x:?}, {y:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn hb_closure_is_derived_in_datalog() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "counter_inc", [Value::from(1)]);
        w.update(r(0), "counter_inc", [Value::from(1)]);
        let c = w.update(r(0), "counter_inc", [Value::from(1)]);
        let analysis = analyze(&w.build());
        assert!(analysis
            .database()
            .contains(&fact("hb", [a.index(), c.index()])));
    }
}

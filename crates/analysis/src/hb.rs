//! Happens-before construction from the recorded trace.
//!
//! Every event receives a [`VersionVector`]: the pointwise maximum of its
//! program-order predecessor's clock (same replica, earlier recording
//! order) and the clocks of all its causal dependencies (implicit sync
//! wiring plus explicit `depends` edges), incremented at its own replica.
//! This is the classic vector-clock assignment, so `a` happened before `b`
//! exactly when `b`'s clock has seen `a`'s increment.

use std::collections::HashMap;

use er_pi_model::{EventId, ReplicaId, VersionVector, Workload};

/// The happens-before graph of one recorded workload.
#[derive(Debug, Clone)]
pub struct HbGraph {
    clocks: Vec<VersionVector>,
    replicas: Vec<ReplicaId>,
    /// Direct edges `(from, to)`: program order plus recorded dependencies.
    edges: Vec<(EventId, EventId)>,
}

impl HbGraph {
    /// Builds the graph for `workload`.
    pub fn build(workload: &Workload) -> Self {
        let mut clocks: Vec<VersionVector> = Vec::with_capacity(workload.len());
        let mut replicas: Vec<ReplicaId> = Vec::with_capacity(workload.len());
        let mut edges: Vec<(EventId, EventId)> = Vec::new();
        let mut last_at: HashMap<ReplicaId, EventId> = HashMap::new();

        for ev in workload.events() {
            let mut clock = VersionVector::new();
            if let Some(&prev) = last_at.get(&ev.replica) {
                clock.merge(&clocks[prev.index()]);
                edges.push((prev, ev.id));
            }
            for dep in ev.all_deps() {
                clock.merge(&clocks[dep.index()]);
                if dep != ev.id {
                    edges.push((dep, ev.id));
                }
            }
            clock.increment(ev.replica);
            clocks.push(clock);
            replicas.push(ev.replica);
            last_at.insert(ev.replica, ev.id);
        }

        HbGraph {
            clocks,
            replicas,
            edges,
        }
    }

    /// The vector clock assigned to `event`.
    ///
    /// # Panics
    ///
    /// Panics if `event` does not belong to the analyzed workload.
    pub fn clock(&self, event: EventId) -> &VersionVector {
        &self.clocks[event.index()]
    }

    /// Direct happens-before edges: program order plus recorded deps.
    pub fn edges(&self) -> &[(EventId, EventId)] {
        &self.edges
    }

    /// Returns `true` when `a` happened before `b`.
    pub fn happens_before(&self, a: EventId, b: EventId) -> bool {
        if a == b {
            return false;
        }
        let seq = self.clocks[a.index()].get(self.replicas[a.index()]);
        self.clocks[b.index()].get(self.replicas[a.index()]) >= seq
    }

    /// Returns `true` when neither event happened before the other.
    pub fn concurrent(&self, a: EventId, b: EventId) -> bool {
        a != b && !self.happens_before(a, b) && !self.happens_before(b, a)
    }

    /// Number of events covered.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Returns `true` for an empty workload.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Renders the graph as Graphviz DOT, one node per event (labelled
    /// with the event's display form and its vector clock) clustered by
    /// replica, one edge per direct happens-before edge. Output is fully
    /// deterministic: nodes in event-id order, edges sorted and deduped.
    pub fn to_dot(&self, workload: &Workload) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "digraph happens_before {\n  rankdir=TB;\n  node [shape=box,fontname=\"monospace\"];\n",
        );
        // One cluster per replica, replicas in id order.
        let mut by_replica: Vec<(ReplicaId, Vec<EventId>)> = Vec::new();
        for ev in workload.events() {
            match by_replica.iter_mut().find(|(r, _)| *r == ev.replica) {
                Some((_, ids)) => ids.push(ev.id),
                None => by_replica.push((ev.replica, vec![ev.id])),
            }
        }
        by_replica.sort_by_key(|(r, _)| *r);
        for (replica, ids) in &by_replica {
            let _ = writeln!(out, "  subgraph cluster_{replica} {{");
            let _ = writeln!(out, "    label=\"replica {replica}\";");
            for &id in ids {
                let event = workload.event(id);
                let clock = &self.clocks[id.index()];
                let clock_s = by_replica
                    .iter()
                    .map(|(r, _)| format!("{r}:{}", clock.get(*r)))
                    .collect::<Vec<_>>()
                    .join(" ");
                let label = dot_escape(&format!("{event}\n⟨{clock_s}⟩"));
                let _ = writeln!(out, "    e{} [label=\"{label}\"];", id.raw());
            }
            let _ = writeln!(out, "  }}");
        }
        let mut edges = self.edges.clone();
        edges.sort();
        edges.dedup();
        for (from, to) in edges {
            let _ = writeln!(out, "  e{} -> e{};", from.raw(), to.raw());
        }
        out.push_str("}\n");
        out
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::Value;

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn program_order_is_happens_before() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "x", [Value::from(1)]);
        let b = w.update(r(0), "y", [Value::from(2)]);
        let hb = HbGraph::build(&w.build());
        assert!(hb.happens_before(a, b));
        assert!(!hb.happens_before(b, a));
        assert!(!hb.concurrent(a, b));
    }

    #[test]
    fn cross_replica_without_deps_is_concurrent() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "x", [Value::from(1)]);
        let b = w.update(r(1), "y", [Value::from(2)]);
        let hb = HbGraph::build(&w.build());
        assert!(hb.concurrent(a, b));
        assert!(!hb.happens_before(a, b));
    }

    #[test]
    fn sync_wiring_orders_across_replicas() {
        // update at 0, split sync to 1, then an update at 1 that explicitly
        // depends on the delivery: the chain is fully ordered.
        let mut w = Workload::builder();
        let u = w.update(r(0), "x", [Value::from(1)]);
        let (send, exec) = w.sync_split(r(0), r(1), Some(u));
        let v = w.update(r(1), "y", [Value::from(2)]);
        w.depends(v, exec);
        let hb = HbGraph::build(&w.build());
        assert!(hb.happens_before(u, send));
        assert!(hb.happens_before(send, exec));
        assert!(hb.happens_before(u, v), "transitive through the sync pair");
        assert!(!hb.concurrent(u, v));
    }

    #[test]
    fn fused_sync_orders_sender_side_only() {
        let mut w = Workload::builder();
        let u = w.update(r(0), "x", [Value::from(1)]);
        let s = w.sync_pair(r(0), r(1), u);
        let v = w.update(r(1), "y", [Value::from(2)]);
        let hb = HbGraph::build(&w.build());
        assert!(hb.happens_before(u, s));
        // Without an explicit dep, the receiver's later update stays
        // concurrent with the sync (the replay may reorder them).
        assert!(hb.concurrent(s, v));
        assert!(hb.concurrent(u, v));
    }

    #[test]
    fn dot_export_is_deterministic_and_well_formed() {
        let mut w = Workload::builder();
        let u = w.update(r(0), "x", [Value::from(1)]);
        let s = w.sync_pair(r(0), r(1), u);
        w.update(r(1), "y", [Value::from(2)]);
        let w = w.build();
        let hb = HbGraph::build(&w);
        let dot = hb.to_dot(&w);
        assert!(dot.starts_with("digraph happens_before {"), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
        assert!(dot.contains("subgraph cluster_R0"), "{dot}");
        assert!(dot.contains("subgraph cluster_R1"), "{dot}");
        assert!(
            dot.contains(&format!("e{} -> e{};", u.raw(), s.raw())),
            "program order edge missing: {dot}"
        );
        assert_eq!(dot, hb.to_dot(&w), "renders must be byte-identical");
        // Every node referenced by an edge is declared.
        for line in dot.lines().filter(|l| l.contains("->")) {
            let from = line.trim().split(' ').next().unwrap();
            assert!(dot.contains(&format!("{from} [label=")), "{line}");
        }
    }

    #[test]
    fn clocks_follow_the_lamport_shape() {
        let mut w = Workload::builder();
        let a = w.update(r(0), "x", [Value::from(1)]);
        let b = w.update(r(0), "y", [Value::from(2)]);
        let hb = HbGraph::build(&w.build());
        assert_eq!(hb.clock(a).get(r(0)), 1);
        assert_eq!(hb.clock(b).get(r(0)), 2);
        assert_eq!(hb.len(), 2);
        assert!(!hb.is_empty());
        assert!(!hb.edges().is_empty());
    }
}

//! The operation vocabulary: mapping intercepted calls to commutativity
//! profiles.
//!
//! The paper's proxies record RDL calls as `(function, args)` descriptors;
//! this module maps the vocabularies of the five evaluation subjects (plus
//! the §2.3 town app) onto the abstract [`OpProfile`]s that the
//! `er-pi-rdl` commutativity tables understand. Unknown functions map to
//! `None`, which the derivation treats as conflicting-with-everything —
//! the conservative default.

use er_pi_model::{OpDescriptor, Value};
use er_pi_rdl::{CrdtType, OpKind, OpProfile};

fn arg(op: &OpDescriptor, i: usize) -> Option<Value> {
    op.arg(i).cloned()
}

fn int_arg(op: &OpDescriptor, i: usize) -> Option<i64> {
    op.arg(i).and_then(Value::as_int)
}

/// Maps one intercepted call to its commutativity profile.
///
/// Covers the recorded vocabularies of all five subjects:
///
/// | Subject | Functions |
/// |---|---|
/// | Roshi | `insert(key, member, score)`, `delete(key, member, score)`, `assemble(key)`, `select(key)` |
/// | OrbitDB | `append(value)` |
/// | ReplicaDB | `put(k, v)`, `delete(k)` (`read_batch`/`commit_batch`/… stay opaque) |
/// | Yorkie | `set(k, v)` |
/// | `crdts` | `set_add`, `set_remove`, `list_*`, `counter_*`, `reg_set`, `todo_create` |
/// | town app | `add(issue)`, `remove(issue)` |
///
/// Returns `None` for functions outside the vocabulary; the caller must
/// treat those as conflicting with everything.
pub fn interpret_op(op: &OpDescriptor) -> Option<OpProfile> {
    let profile = match op.function() {
        // §2.3 town app — OR-set of reported issues.
        "add" => OpProfile::new(
            CrdtType::OrSet,
            OpKind::Add {
                element: arg(op, 0),
            },
        ),
        "remove" => OpProfile::new(
            CrdtType::OrSet,
            OpKind::Remove {
                element: arg(op, 0),
            },
        ),
        // Roshi — LWW time-series keyed by (key, member); commutativity is
        // member-wise, so the profile element is the member argument.
        "insert" => OpProfile::new(
            CrdtType::LwwTimeSeries,
            OpKind::Add {
                element: arg(op, 1),
            },
        ),
        "delete" if op.args().len() >= 2 => OpProfile::new(
            CrdtType::LwwTimeSeries,
            OpKind::Remove {
                element: arg(op, 1),
            },
        ),
        "assemble" | "select" => OpProfile::new(CrdtType::LwwTimeSeries, OpKind::Read),
        // ReplicaDB — keyed source/sink tables (LWW-map shaped).
        "put" => OpProfile::new(CrdtType::LwwMap, OpKind::Write { key: arg(op, 0) }),
        "delete" => OpProfile::new(
            CrdtType::LwwMap,
            OpKind::Remove {
                element: arg(op, 0),
            },
        ),
        // OrbitDB — Merkle append log.
        "append" => OpProfile::new(CrdtType::MerkleLog, OpKind::Append),
        // Yorkie — JSON document writes keyed by path.
        "set" => OpProfile::new(CrdtType::JsonDoc, OpKind::Write { key: arg(op, 0) }),
        // crdts collection.
        "set_add" => OpProfile::new(
            CrdtType::OrSet,
            OpKind::Add {
                element: arg(op, 0),
            },
        ),
        "set_remove" => OpProfile::new(
            CrdtType::OrSet,
            OpKind::Remove {
                element: arg(op, 0),
            },
        ),
        // A push appends at the (state-dependent) end of the list: its
        // position is unknown statically.
        "list_push" => OpProfile::new(CrdtType::Rga, OpKind::Insert { position: None }),
        "list_insert" => OpProfile::new(
            CrdtType::Rga,
            OpKind::Insert {
                position: int_arg(op, 0),
            },
        ),
        "list_delete" => OpProfile::new(
            CrdtType::Rga,
            OpKind::Delete {
                position: int_arg(op, 0),
            },
        ),
        "list_move" => OpProfile::new(CrdtType::Rga, OpKind::Move { safe: true }),
        "list_move_naive" => OpProfile::new(CrdtType::Rga, OpKind::Move { safe: false }),
        "counter_inc" => OpProfile::new(CrdtType::PnCounter, OpKind::Inc),
        "counter_dec" => OpProfile::new(CrdtType::PnCounter, OpKind::Dec),
        "reg_set" => OpProfile::new(CrdtType::LwwRegister, OpKind::Write { key: None }),
        "todo_create" => OpProfile::new(CrdtType::OrMap, OpKind::MintId),
        _ => return None,
    };
    Some(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roshi_vocabulary() {
        let ins = OpDescriptor::new(
            "insert",
            [Value::from("k"), Value::from("m"), Value::from(10)],
        );
        let p = interpret_op(&ins).unwrap();
        assert_eq!(p.crdt, CrdtType::LwwTimeSeries);
        assert_eq!(
            p.kind,
            OpKind::Add {
                element: Some(Value::from("m"))
            }
        );
        let sel = OpDescriptor::new("select", [Value::from("k")]);
        assert_eq!(interpret_op(&sel).unwrap().kind, OpKind::Read);
    }

    #[test]
    fn delete_arity_disambiguates_roshi_from_replicadb() {
        let roshi = OpDescriptor::new(
            "delete",
            [Value::from("k"), Value::from("m"), Value::from(10)],
        );
        assert_eq!(interpret_op(&roshi).unwrap().crdt, CrdtType::LwwTimeSeries);
        let rdb = OpDescriptor::new("delete", [Value::from(2)]);
        assert_eq!(interpret_op(&rdb).unwrap().crdt, CrdtType::LwwMap);
    }

    #[test]
    fn crdts_vocabulary() {
        let mint = OpDescriptor::new("todo_create", [Value::from("buy milk")]);
        assert_eq!(interpret_op(&mint).unwrap().kind, OpKind::MintId);
        let push = OpDescriptor::new("list_push", [Value::from(1)]);
        assert_eq!(
            interpret_op(&push).unwrap().kind,
            OpKind::Insert { position: None }
        );
        let naive = OpDescriptor::new("list_move_naive", [Value::from(0), Value::from(2)]);
        assert_eq!(
            interpret_op(&naive).unwrap().kind,
            OpKind::Move { safe: false }
        );
    }

    #[test]
    fn unknown_functions_stay_opaque() {
        let op = OpDescriptor::nullary("commit_batch");
        assert!(interpret_op(&op).is_none());
        assert!(interpret_op(&OpDescriptor::nullary("read_batch")).is_none());
    }
}

//! Bounded execution harness behind the commutativity certifier.
//!
//! For every RDL type family this module fixes a small concrete operation
//! vocabulary (the *executable* instantiation of the abstract
//! [`OpProfile`]s the conflict table judges), a pair of witness start
//! states (empty and seeded), and two scenarios:
//!
//! * **same-replica** — both operations apply to one replica's state, in
//!   both orders, with timestamps derived from the execution position
//!   (exactly how replay assigns logical time when two same-replica events
//!   are swapped);
//! * **cross-replica** — each operation applies to its own replica's
//!   state, again with position-derived timestamps, and the two states are
//!   merged through [`StateCrdt::merge`].
//!
//! Two orders *diverge* when the canonical observable state differs or
//! when any operation's outcome — applied, failed, or observed value,
//! tracked per operation identity — differs between the orders. Outcomes
//! deliberately abstract away internal identities (OR-set dots, RGA
//! element ids) and LWW win/lose flags: losing a last-writer-wins race is
//! normal behaviour, while a remove/delete that finds nothing to act on is
//! a failed op (first-class in ER-π: Algorithm 4 prunes around them).
//!
//! The harness is exhaustive within its bounds: all `n·(n+1)/2` unordered
//! pairs of the vocabulary (including two invocations of the *same*
//! operation, which can still race on their outcomes), every seed, every
//! scenario, and every library configuration that changes resolution
//! semantics (the time-series tie policies, including the order-dependent
//! `LastApplied` one the Roshi-2 bug distils).

use er_pi_model::{LamportTimestamp, ReplicaId, Value};
use er_pi_rdl::{
    Bias, CrdtType, GCounter, GSet, JsonDoc, LwwElementSet, LwwMap, LwwRegister, LwwTimeSeries,
    MerkleLog, MvRegister, OpKind, OpProfile, OrMap, OrSet, PnCounter, Rga, StateCrdt, TieBreak,
    TwoPhaseSet,
};
use serde::Serialize;

/// The abstract outcome of one harness operation, compared per operation
/// identity across the two orders.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CertOutcome {
    /// The operation took effect (or lost an LWW race, which is normal).
    Applied,
    /// The operation found nothing to act on and failed.
    Failed,
    /// The operation observed a value (reads, id minting).
    Observed(String),
}

impl std::fmt::Display for CertOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertOutcome::Applied => write!(f, "applied"),
            CertOutcome::Failed => write!(f, "failed"),
            CertOutcome::Observed(v) => write!(f, "observed({v})"),
        }
    }
}

/// One concrete, executable operation of the harness vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Inc(u64),
    Dec(u64),
    SetAdd(&'static str),
    SetRemove(&'static str),
    RgaInsert(usize, &'static str),
    RgaPush(&'static str),
    RgaDelete(usize),
    RgaMove(usize, usize),
    RgaMoveNaive(usize, usize),
    MapPut(&'static str, i64),
    MapRemove(&'static str),
    OrMapUpdate(i64),
    OrMapRemove(i64),
    OrMapMint,
    RegSet(i64),
    TsInsert(&'static str, u64),
    TsDelete(&'static str, u64),
    TsSelect,
    LogAppend(&'static str),
    DocSet(&'static str, i64),
    DocRemove(&'static str),
}

/// Replica state for one family instance.
#[derive(Debug, Clone)]
enum St {
    GCounter(GCounter),
    PnCounter(PnCounter),
    GSet(GSet<&'static str>),
    TwoPhaseSet(TwoPhaseSet<&'static str>),
    OrSet(OrSet<&'static str>),
    LwwSet(LwwElementSet<&'static str>),
    Rga(Rga<&'static str>),
    LwwMap(LwwMap<&'static str, i64>),
    OrMap(OrMap<i64, GCounter>),
    LwwReg(LwwRegister<i64>),
    MvReg(MvRegister<i64>),
    Ts(LwwTimeSeries),
    Log(MerkleLog),
    Doc(JsonDoc),
}

/// One family under certification: its concrete vocabulary plus the
/// library configurations whose resolution semantics differ.
struct Family {
    crdt: CrdtType,
    name: &'static str,
    configs: &'static [&'static str],
    ops: Vec<(Op, &'static str)>,
}

/// Stable short name for a family, used in evidence rows and validation.
pub fn family_name(crdt: CrdtType) -> &'static str {
    match crdt {
        CrdtType::GCounter => "gcounter",
        CrdtType::PnCounter => "pncounter",
        CrdtType::LwwRegister => "lwwregister",
        CrdtType::MvRegister => "mvregister",
        CrdtType::GSet => "gset",
        CrdtType::TwoPhaseSet => "twophaseset",
        CrdtType::OrSet => "orset",
        CrdtType::LwwElementSet => "lwwelementset",
        CrdtType::Rga => "rga",
        CrdtType::LwwMap => "lwwmap",
        CrdtType::OrMap => "ormap",
        CrdtType::LwwTimeSeries => "lwwtimeseries",
        CrdtType::MerkleLog => "merklelog",
        CrdtType::JsonDoc => "jsondoc",
    }
}

/// Stable short name for an operation kind, used to key commute-claim
/// verdicts in the certified table.
pub fn kind_sig(kind: &OpKind) -> &'static str {
    match kind {
        OpKind::Inc => "inc",
        OpKind::Dec => "dec",
        OpKind::Write { .. } => "write",
        OpKind::Add { .. } => "add",
        OpKind::Remove { .. } => "remove",
        OpKind::Insert { .. } => "insert",
        OpKind::Delete { .. } => "delete",
        OpKind::Move { safe: true } => "move",
        OpKind::Move { safe: false } => "move-naive",
        OpKind::Append => "append",
        OpKind::MintId => "mint-id",
        OpKind::Read => "read",
    }
}

fn families() -> Vec<Family> {
    use Op::*;
    vec![
        Family {
            crdt: CrdtType::GCounter,
            name: "gcounter",
            configs: &["default"],
            ops: vec![(Inc(1), "inc(1)"), (Inc(2), "inc(2)")],
        },
        Family {
            crdt: CrdtType::PnCounter,
            name: "pncounter",
            configs: &["default"],
            ops: vec![(Inc(1), "inc(1)"), (Dec(1), "dec(1)")],
        },
        Family {
            crdt: CrdtType::GSet,
            name: "gset",
            configs: &["default"],
            ops: vec![(SetAdd("x"), "add(x)"), (SetAdd("y"), "add(y)")],
        },
        Family {
            crdt: CrdtType::TwoPhaseSet,
            name: "twophaseset",
            configs: &["default"],
            ops: vec![
                (SetAdd("x"), "add(x)"),
                (SetAdd("y"), "add(y)"),
                (SetRemove("x"), "remove(x)"),
                (SetRemove("y"), "remove(y)"),
            ],
        },
        Family {
            crdt: CrdtType::OrSet,
            name: "orset",
            configs: &["default"],
            ops: vec![
                (SetAdd("x"), "add(x)"),
                (SetAdd("y"), "add(y)"),
                (SetRemove("x"), "remove(x)"),
                (SetRemove("y"), "remove(y)"),
            ],
        },
        Family {
            crdt: CrdtType::LwwElementSet,
            name: "lwwelementset",
            configs: &["bias-add"],
            ops: vec![
                (SetAdd("x"), "add(x)"),
                (SetAdd("y"), "add(y)"),
                (SetRemove("x"), "remove(x)"),
                (SetRemove("y"), "remove(y)"),
            ],
        },
        Family {
            crdt: CrdtType::Rga,
            name: "rga",
            configs: &["default"],
            ops: vec![
                (RgaInsert(0, "p"), "insert(0,p)"),
                (RgaInsert(2, "q"), "insert(2,q)"),
                (RgaPush("r"), "push(r)"),
                (RgaDelete(0), "delete(0)"),
                (RgaDelete(2), "delete(2)"),
                (RgaMove(0, 2), "move(0,2)"),
                (RgaMoveNaive(0, 2), "move_naive(0,2)"),
            ],
        },
        Family {
            crdt: CrdtType::LwwMap,
            name: "lwwmap",
            configs: &["default"],
            ops: vec![
                (MapPut("k", 1), "put(k,1)"),
                (MapPut("k", 2), "put(k,2)"),
                (MapPut("j", 3), "put(j,3)"),
                (MapRemove("k"), "remove(k)"),
                (MapRemove("j"), "remove(j)"),
            ],
        },
        Family {
            crdt: CrdtType::OrMap,
            name: "ormap",
            configs: &["default"],
            ops: vec![
                (OrMapUpdate(1), "update(1)"),
                (OrMapUpdate(9), "update(9)"),
                (OrMapRemove(1), "remove(1)"),
                (OrMapMint, "mint_id"),
            ],
        },
        Family {
            crdt: CrdtType::LwwRegister,
            name: "lwwregister",
            configs: &["default"],
            ops: vec![(RegSet(1), "set(1)"), (RegSet(2), "set(2)")],
        },
        Family {
            crdt: CrdtType::MvRegister,
            name: "mvregister",
            configs: &["default"],
            ops: vec![(RegSet(1), "set(1)"), (RegSet(2), "set(2)")],
        },
        Family {
            crdt: CrdtType::LwwTimeSeries,
            name: "lwwtimeseries",
            configs: &["insert-wins", "last-applied"],
            ops: vec![
                (TsInsert("m", 5), "insert(m,5)"),
                (TsDelete("m", 5), "delete(m,5)"),
                (TsInsert("m", 7), "insert(m,7)"),
                (TsInsert("n", 5), "insert(n,5)"),
                (TsDelete("n", 9), "delete(n,9)"),
                (TsSelect, "select"),
            ],
        },
        Family {
            crdt: CrdtType::MerkleLog,
            name: "merklelog",
            configs: &["default"],
            ops: vec![(LogAppend("a"), "append(a)"), (LogAppend("b"), "append(b)")],
        },
        Family {
            crdt: CrdtType::JsonDoc,
            name: "jsondoc",
            configs: &["default"],
            ops: vec![
                (DocSet("p", 1), "set(p,1)"),
                (DocSet("p", 2), "set(p,2)"),
                (DocSet("q", 3), "set(q,3)"),
                (DocRemove("p"), "remove(p)"),
                (DocRemove("q"), "remove(q)"),
            ],
        },
    ]
}

/// The abstract profile the conflict table judges `op` under.
fn profile(crdt: CrdtType, op: &Op) -> OpProfile {
    let kind = match *op {
        Op::Inc(_) => OpKind::Inc,
        Op::Dec(_) => OpKind::Dec,
        Op::SetAdd(e) => OpKind::Add {
            element: Some(Value::from(e)),
        },
        Op::SetRemove(e) => OpKind::Remove {
            element: Some(Value::from(e)),
        },
        Op::RgaInsert(i, _) => OpKind::Insert {
            position: Some(i as i64),
        },
        Op::RgaPush(_) => OpKind::Insert { position: None },
        Op::RgaDelete(i) => OpKind::Delete {
            position: Some(i as i64),
        },
        Op::RgaMove(..) => OpKind::Move { safe: true },
        Op::RgaMoveNaive(..) => OpKind::Move { safe: false },
        Op::MapPut(k, _) => OpKind::Write {
            key: Some(Value::from(k)),
        },
        Op::MapRemove(k) => OpKind::Remove {
            element: Some(Value::from(k)),
        },
        Op::OrMapUpdate(k) => OpKind::Write {
            key: Some(Value::from(k)),
        },
        Op::OrMapRemove(k) => OpKind::Remove {
            element: Some(Value::from(k)),
        },
        Op::OrMapMint => OpKind::MintId,
        Op::RegSet(_) => OpKind::Write { key: None },
        Op::TsInsert(m, _) => OpKind::Add {
            element: Some(Value::from(m)),
        },
        Op::TsDelete(m, _) => OpKind::Remove {
            element: Some(Value::from(m)),
        },
        Op::TsSelect => OpKind::Read,
        Op::LogAppend(_) => OpKind::Append,
        Op::DocSet(p, _) => OpKind::Write {
            key: Some(Value::from(p)),
        },
        Op::DocRemove(p) => OpKind::Remove {
            element: Some(Value::from(p)),
        },
    };
    OpProfile::new(crdt, kind)
}

fn ts(time: u64, idx: u16) -> LamportTimestamp {
    LamportTimestamp::new(time, ReplicaId::new(idx))
}

/// Builds a replica's start state. `seeded == false` is the empty state;
/// `seeded == true` pre-populates the targets the vocabulary acts on, so
/// removes/deletes have something to observe. Seed timestamps stay below
/// every operation timestamp.
fn init(crdt: CrdtType, config: usize, seeded: bool, idx: u16) -> St {
    let replica = ReplicaId::new(idx);
    match crdt {
        CrdtType::GCounter => {
            let mut c = GCounter::new(replica);
            if seeded {
                c.increment(3);
            }
            St::GCounter(c)
        }
        CrdtType::PnCounter => {
            let mut c = PnCounter::new(replica);
            if seeded {
                c.increment(3);
            }
            St::PnCounter(c)
        }
        CrdtType::GSet => {
            let mut s = GSet::new();
            if seeded {
                s.insert("x");
            }
            St::GSet(s)
        }
        CrdtType::TwoPhaseSet => {
            let mut s = TwoPhaseSet::new();
            if seeded {
                s.insert("x");
                s.insert("y");
            }
            St::TwoPhaseSet(s)
        }
        CrdtType::OrSet => {
            let mut s = OrSet::new(replica);
            if seeded {
                s.insert("x");
                s.insert("y");
            }
            St::OrSet(s)
        }
        CrdtType::LwwElementSet => {
            let mut s = LwwElementSet::new(Bias::Add);
            if seeded {
                s.add("x", ts(1, idx));
                s.add("y", ts(2, idx));
            }
            St::LwwSet(s)
        }
        CrdtType::Rga => {
            let mut l = Rga::new(replica);
            if seeded {
                for v in ["a", "b", "c", "d"] {
                    l.push(v);
                }
            }
            St::Rga(l)
        }
        CrdtType::LwwMap => {
            let mut m = LwwMap::new();
            if seeded {
                m.put("k", 0, ts(1, idx));
                m.put("j", 0, ts(2, idx));
            }
            St::LwwMap(m)
        }
        CrdtType::OrMap => {
            let mut m = OrMap::new(replica);
            if seeded {
                m.update_with(1, || GCounter::new(replica), |c| c.increment(1));
            }
            St::OrMap(m)
        }
        CrdtType::LwwRegister => {
            let initial = if seeded { 5 } else { 0 };
            St::LwwReg(LwwRegister::new(initial, ts(1, idx)))
        }
        CrdtType::MvRegister => {
            let mut r = MvRegister::new(replica);
            if seeded {
                r.set(5);
            }
            St::MvReg(r)
        }
        CrdtType::LwwTimeSeries => {
            let tie = if config == 0 {
                TieBreak::InsertWins
            } else {
                TieBreak::LastApplied
            };
            let mut t = LwwTimeSeries::new(tie);
            if seeded {
                t.insert("k", "m", 1);
                t.insert("k", "n", 2);
            }
            St::Ts(t)
        }
        CrdtType::MerkleLog => {
            let mut l = MerkleLog::new(replica, format!("site{idx}"));
            if seeded {
                l.append(Value::from("s"));
            }
            St::Log(l)
        }
        CrdtType::JsonDoc => {
            let mut d = JsonDoc::new(replica);
            if seeded {
                d.set(&["p"], Value::from(0)).expect("seed doc set");
                d.set(&["q"], Value::from(0)).expect("seed doc set");
            }
            St::Doc(d)
        }
    }
}

/// Applies one vocabulary op at execution position `pos` (the source of
/// its logical timestamp) on behalf of replica `idx`.
fn apply(st: &mut St, op: &Op, pos: u64, idx: u16) -> CertOutcome {
    match (st, op) {
        (St::GCounter(c), Op::Inc(n)) => {
            c.increment(*n);
            CertOutcome::Applied
        }
        (St::PnCounter(c), Op::Inc(n)) => {
            c.increment(*n);
            CertOutcome::Applied
        }
        (St::PnCounter(c), Op::Dec(n)) => {
            c.decrement(*n);
            CertOutcome::Applied
        }
        (St::GSet(s), Op::SetAdd(e)) => {
            s.insert(*e);
            CertOutcome::Applied
        }
        (St::TwoPhaseSet(s), Op::SetAdd(e)) => {
            // Add is "ensure present": a duplicate add is an idempotent
            // success, not a failure.
            s.insert(*e);
            CertOutcome::Applied
        }
        (St::TwoPhaseSet(s), Op::SetRemove(e)) => {
            if s.remove(e) {
                CertOutcome::Applied
            } else {
                CertOutcome::Failed
            }
        }
        (St::OrSet(s), Op::SetAdd(e)) => {
            s.insert(*e);
            CertOutcome::Applied
        }
        (St::OrSet(s), Op::SetRemove(e)) => {
            if s.remove(e).is_some() {
                CertOutcome::Applied
            } else {
                CertOutcome::Failed
            }
        }
        (St::LwwSet(s), Op::SetAdd(e)) => {
            s.add(*e, ts(pos, idx));
            CertOutcome::Applied
        }
        (St::LwwSet(s), Op::SetRemove(e)) => {
            s.remove(*e, ts(pos, idx));
            CertOutcome::Applied
        }
        (St::Rga(l), Op::RgaInsert(i, v)) => {
            if *i <= l.len() {
                l.insert(*i, *v);
                CertOutcome::Applied
            } else {
                CertOutcome::Failed
            }
        }
        (St::Rga(l), Op::RgaPush(v)) => {
            l.push(*v);
            CertOutcome::Applied
        }
        (St::Rga(l), Op::RgaDelete(i)) => {
            if l.delete(*i).is_some() {
                CertOutcome::Applied
            } else {
                CertOutcome::Failed
            }
        }
        (St::Rga(l), Op::RgaMove(f, t)) => {
            if l.move_item(*f, *t).is_some() {
                CertOutcome::Applied
            } else {
                CertOutcome::Failed
            }
        }
        (St::Rga(l), Op::RgaMoveNaive(f, t)) => {
            if l.move_naive(*f, *t).is_some() {
                CertOutcome::Applied
            } else {
                CertOutcome::Failed
            }
        }
        (St::LwwMap(m), Op::MapPut(k, v)) => {
            // The returned bool reports an LWW win, not a failure.
            m.put(*k, *v, ts(pos, idx));
            CertOutcome::Applied
        }
        (St::LwwMap(m), Op::MapRemove(k)) => {
            m.remove(k, ts(pos, idx));
            CertOutcome::Applied
        }
        (St::OrMap(m), Op::OrMapUpdate(k)) => {
            let replica = ReplicaId::new(idx);
            m.update_with(*k, || GCounter::new(replica), |c| c.increment(1));
            CertOutcome::Applied
        }
        (St::OrMap(m), Op::OrMapRemove(k)) => {
            if m.remove(k) {
                CertOutcome::Applied
            } else {
                CertOutcome::Failed
            }
        }
        (St::OrMap(m), Op::OrMapMint) => {
            // Sequential-id minting: read the (non-replicated) maximum key
            // and create the next one — Table 2's misconception #4.
            let id = m.iter().map(|(k, _)| *k).max().unwrap_or(0) + 1;
            let replica = ReplicaId::new(idx);
            m.update_with(id, || GCounter::new(replica), |c| c.increment(1));
            CertOutcome::Observed(id.to_string())
        }
        (St::LwwReg(r), Op::RegSet(v)) => {
            r.set(*v, ts(pos, idx));
            CertOutcome::Applied
        }
        (St::MvReg(r), Op::RegSet(v)) => {
            r.set(*v);
            CertOutcome::Applied
        }
        (St::Ts(t), Op::TsInsert(m, score)) => {
            t.insert("k", m, *score);
            CertOutcome::Applied
        }
        (St::Ts(t), Op::TsDelete(m, score)) => {
            t.delete("k", m, *score);
            CertOutcome::Applied
        }
        (St::Ts(t), Op::TsSelect) => CertOutcome::Observed(format!("{:?}", t.select("k", 0, 16))),
        (St::Log(l), Op::LogAppend(v)) => {
            l.append(Value::from(*v));
            CertOutcome::Applied
        }
        (St::Doc(d), Op::DocSet(p, v)) => {
            if d.set(&[*p], Value::from(*v)).is_ok() {
                CertOutcome::Applied
            } else {
                CertOutcome::Failed
            }
        }
        (St::Doc(d), Op::DocRemove(p)) => {
            if d.remove(&[*p]).is_ok() {
                CertOutcome::Applied
            } else {
                CertOutcome::Failed
            }
        }
        (st, op) => unreachable!("certifier paired op {op:?} with foreign state {st:?}"),
    }
}

/// Canonical observable state: what replay's byte-identity oracle would
/// see. Internal identities (dots, element ids, stored timestamps) are
/// excluded; LWW resolution results, visibility, and order are included.
fn observe(st: &St) -> String {
    match st {
        St::GCounter(c) => c.value().to_string(),
        St::PnCounter(c) => c.value().to_string(),
        St::GSet(s) => format!("{:?}", s.iter().collect::<Vec<_>>()),
        St::TwoPhaseSet(s) => format!("{:?}", s.iter().collect::<Vec<_>>()),
        St::OrSet(s) => format!("{:?}", s.elements()),
        St::LwwSet(s) => format!("{:?}", s.elements()),
        St::Rga(l) => format!("{:?}", l.values()),
        St::LwwMap(m) => {
            let entries: Vec<(&&str, Option<i64>)> =
                m.keys().map(|k| (k, m.get(k).copied())).collect();
            format!("{entries:?}")
        }
        St::OrMap(m) => {
            let entries: Vec<(i64, u64)> = m.iter().map(|(k, v)| (*k, v.value())).collect();
            format!("{entries:?}")
        }
        St::LwwReg(r) => r.get().to_string(),
        St::MvReg(r) => format!("{:?}/conflicted={}", r.values(), r.is_conflicted()),
        St::Ts(t) => format!(
            "{:?}/m={:?}/n={:?}",
            t.select("k", 0, 16),
            t.is_deleted("k", "m"),
            t.is_deleted("k", "n")
        ),
        St::Log(l) => format!("{:?}", l.values()),
        St::Doc(d) => format!("{:?}", d.root()),
    }
}

fn merge(a: &mut St, b: &St) {
    match (a, b) {
        (St::GCounter(x), St::GCounter(y)) => x.merge(y),
        (St::PnCounter(x), St::PnCounter(y)) => x.merge(y),
        (St::GSet(x), St::GSet(y)) => x.merge(y),
        (St::TwoPhaseSet(x), St::TwoPhaseSet(y)) => x.merge(y),
        (St::OrSet(x), St::OrSet(y)) => x.merge(y),
        (St::LwwSet(x), St::LwwSet(y)) => x.merge(y),
        (St::Rga(x), St::Rga(y)) => x.merge(y),
        (St::LwwMap(x), St::LwwMap(y)) => x.merge(y),
        (St::OrMap(x), St::OrMap(y)) => x.merge(y),
        (St::LwwReg(x), St::LwwReg(y)) => x.merge(y),
        (St::MvReg(x), St::MvReg(y)) => x.merge(y),
        (St::Ts(x), St::Ts(y)) => x.merge(y),
        (St::Log(x), St::Log(y)) => x.merge(y),
        (St::Doc(x), St::Doc(y)) => x.merge(y),
        (a, b) => unreachable!("certifier merged foreign states {a:?} / {b:?}"),
    }
}

/// A concrete divergence found by the harness: the same two operations, in
/// the two orders, with the resulting observable state and per-op
/// outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CertWitness {
    /// Family short name.
    pub family: String,
    /// Pair label, e.g. `"add(x) × remove(x)"`.
    pub pair: String,
    /// `"same-replica"` or `"cross-replica"`.
    pub scenario: String,
    /// Library configuration label (e.g. the tie policy).
    pub config: String,
    /// Whether the start state was seeded.
    pub seeded: bool,
    /// Observable state and outcomes after applying a-then-b.
    pub forward: String,
    /// Observable state and outcomes after applying b-then-a.
    pub swapped: String,
}

/// Evidence for one unordered operation pair: the table's claim and
/// whether any bounded scenario diverged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PairEvidence {
    /// Family short name.
    pub family: String,
    /// Label of the first operation.
    pub a: String,
    /// Label of the second operation.
    pub b: String,
    /// Kind signature of the first operation (for verdict lookups).
    pub sig_a: String,
    /// Kind signature of the second operation.
    pub sig_b: String,
    /// The oracle's claim: `None` = commutes, `Some(reason)` = conflicts.
    pub claim: Option<String>,
    /// Number of (scenario × seed × config × order) executions performed.
    pub checks: usize,
    /// Whether any scenario diverged between the two orders.
    pub diverged: bool,
    /// The first divergence found, if any.
    pub witness: Option<CertWitness>,
}

/// Base timestamp for pair operations; seed timestamps stay below it.
const BASE: u64 = 10;

struct OrderResult {
    state: String,
    out_a: CertOutcome,
    out_b: CertOutcome,
}

impl OrderResult {
    fn render(&self, label_a: &str, label_b: &str) -> String {
        format!(
            "state={} {}={} {}={}",
            self.state, label_a, self.out_a, label_b, self.out_b
        )
    }
}

/// Same-replica scenario: both ops on replica 0, `a_first` choosing the
/// order. Outcomes are reported per op identity (a, b).
fn run_same(
    crdt: CrdtType,
    config: usize,
    seeded: bool,
    a: &Op,
    b: &Op,
    a_first: bool,
) -> OrderResult {
    let mut st = init(crdt, config, seeded, 0);
    let (out_a, out_b) = if a_first {
        let oa = apply(&mut st, a, BASE + 1, 0);
        let ob = apply(&mut st, b, BASE + 2, 0);
        (oa, ob)
    } else {
        let ob = apply(&mut st, b, BASE + 1, 0);
        let oa = apply(&mut st, a, BASE + 2, 0);
        (oa, ob)
    };
    OrderResult {
        state: observe(&st),
        out_a,
        out_b,
    }
}

/// Cross-replica scenario: op `a` on replica 0, op `b` on replica 1,
/// timestamps from the global execution position, then a state merge.
fn run_cross(
    crdt: CrdtType,
    config: usize,
    seeded: bool,
    a: &Op,
    b: &Op,
    a_first: bool,
) -> OrderResult {
    let mut s0 = init(crdt, config, seeded, 0);
    let mut s1 = init(crdt, config, seeded, 1);
    let (out_a, out_b) = if a_first {
        let oa = apply(&mut s0, a, BASE + 1, 0);
        let ob = apply(&mut s1, b, BASE + 2, 1);
        (oa, ob)
    } else {
        let ob = apply(&mut s1, b, BASE + 1, 1);
        let oa = apply(&mut s0, a, BASE + 2, 0);
        (oa, ob)
    };
    merge(&mut s0, &s1);
    OrderResult {
        state: observe(&s0),
        out_a,
        out_b,
    }
}

/// Runs the full bounded harness under `oracle` (normally
/// [`OpProfile::commutes_with`]) and returns one evidence row per
/// (family, unordered pair).
pub fn certify_pairs(
    oracle: &dyn Fn(&OpProfile, &OpProfile) -> Option<&'static str>,
) -> Vec<PairEvidence> {
    let mut rows = Vec::new();
    for family in families() {
        let n = family.ops.len();
        for i in 0..n {
            for j in i..n {
                let (op_a, label_a) = &family.ops[i];
                let (op_b, label_b) = &family.ops[j];
                let pa = profile(family.crdt, op_a);
                let pb = profile(family.crdt, op_b);
                let claim = oracle(&pa, &pb);
                let mut checks = 0usize;
                let mut witness: Option<CertWitness> = None;
                for (ci, config) in family.configs.iter().enumerate() {
                    for seeded in [false, true] {
                        for scenario in ["same-replica", "cross-replica"] {
                            let run = |a_first: bool| {
                                if scenario == "same-replica" {
                                    run_same(family.crdt, ci, seeded, op_a, op_b, a_first)
                                } else {
                                    run_cross(family.crdt, ci, seeded, op_a, op_b, a_first)
                                }
                            };
                            let fwd = run(true);
                            let swp = run(false);
                            checks += 2;
                            let diverged = fwd.state != swp.state
                                || fwd.out_a != swp.out_a
                                || fwd.out_b != swp.out_b;
                            if diverged && witness.is_none() {
                                witness = Some(CertWitness {
                                    family: family.name.to_string(),
                                    pair: format!("{label_a} × {label_b}"),
                                    scenario: scenario.to_string(),
                                    config: config.to_string(),
                                    seeded,
                                    forward: fwd.render(label_a, label_b),
                                    swapped: swp.render(label_a, label_b),
                                });
                            }
                        }
                    }
                }
                rows.push(PairEvidence {
                    family: family.name.to_string(),
                    a: label_a.to_string(),
                    b: label_b.to_string(),
                    sig_a: kind_sig(&pa.kind).to_string(),
                    sig_b: kind_sig(&pb.kind).to_string(),
                    claim: claim.map(str::to_string),
                    checks,
                    diverged: witness.is_some(),
                    witness,
                });
            }
        }
    }
    rows
}

/// Total number of concrete operations in the harness vocabulary.
pub fn vocabulary_size() -> usize {
    families().iter().map(|f| f.ops.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_oracle(a: &OpProfile, b: &OpProfile) -> Option<&'static str> {
        a.commutes_with(b)
    }

    #[test]
    fn harness_covers_every_family() {
        let rows = certify_pairs(&real_oracle);
        let mut fams: Vec<&str> = rows.iter().map(|r| r.family.as_str()).collect();
        fams.sort_unstable();
        fams.dedup();
        assert_eq!(fams.len(), 14, "all 14 families certified: {fams:?}");
    }

    #[test]
    fn no_commute_claim_diverges() {
        for row in certify_pairs(&real_oracle) {
            if row.claim.is_none() {
                assert!(
                    !row.diverged,
                    "{}: {} × {} claimed commuting but diverged: {:?}",
                    row.family, row.a, row.b, row.witness
                );
            }
        }
    }

    #[test]
    fn orset_same_element_removes_diverge_on_outcome() {
        let rows = certify_pairs(&real_oracle);
        let row = rows
            .iter()
            .find(|r| r.family == "orset" && r.a == "remove(x)" && r.b == "remove(x)")
            .expect("pair present");
        assert!(row.claim.is_some());
        assert!(row.diverged, "second remove fails: outcome must race");
    }

    #[test]
    fn rga_distinct_index_inserts_diverge() {
        let rows = certify_pairs(&real_oracle);
        let row = rows
            .iter()
            .find(|r| r.family == "rga" && r.a == "insert(0,p)" && r.b == "insert(2,q)")
            .expect("pair present");
        assert!(row.diverged, "anchor shift must be witnessed");
    }

    #[test]
    fn last_applied_tie_policy_is_witnessed() {
        let rows = certify_pairs(&real_oracle);
        let row = rows
            .iter()
            .find(|r| r.family == "lwwtimeseries" && r.a == "insert(m,5)" && r.b == "delete(m,5)")
            .expect("pair present");
        let w = row.witness.as_ref().expect("divergence witness");
        assert_eq!(
            w.config, "last-applied",
            "only the buggy tie policy diverges"
        );
    }
}

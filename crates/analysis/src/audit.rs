//! The bounded commutativity certifier and its validators.
//!
//! [`certify_table`] runs the execution harness of [`crate::certify`] over
//! every unordered operation pair of every family and folds the evidence
//! into a machine-readable [`CertifiedTable`]:
//!
//! * every **"commutes" claim** of [`OpProfile::commutes_with`] must be
//!   state- and outcome-convergent in *all* bounded scenarios
//!   ([`Verdict::CertifiedCommute`]), else the claim — and any pruning
//!   built on it — is [`Verdict::Unsound`];
//! * every **conflict reason** enumerated by
//!   [`er_pi_rdl::conflict_reasons`] must carry a concrete divergence
//!   witness ([`Verdict::WitnessedConflict`]), else it is vacuous
//!   ([`Verdict::Unwitnessed`]) — it claims a race the harness cannot
//!   realize, which usually means the table is stale or the reason is
//!   misfiled. Purely defensive arms (unsupported-vocabulary fallbacks)
//!   are declared as such in the enumeration and must stay unreachable
//!   ([`Verdict::Defensive`]).
//!
//! [`validate_table`] converts any unsound or vacuous entry into
//! [`Diagnostic`]s of the [`LintPattern::IndependenceSoundness`] class, and
//! [`validate_independence`] cross-checks a hand-declared (or derived)
//! [`PruningConfig`] against the certified table before a campaign starts.

use serde::Serialize;

use er_pi_interleave::PruningConfig;
use er_pi_model::{ReplicaId, Workload};
use er_pi_rdl::{conflict_reasons, OpProfile};

use crate::certify::{certify_pairs, family_name, kind_sig, CertWitness, PairEvidence};
use crate::lint::{Diagnostic, LintPattern};
use crate::vocab::interpret_op;

/// The certifier's judgement on one claim of the commutativity table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// A "commutes" claim: every bounded scenario converged in state and
    /// per-op outcomes.
    CertifiedCommute,
    /// A conflict claim with at least one concrete divergence witness.
    WitnessedConflict,
    /// A claim the execution evidence contradicts: a "commutes" pair that
    /// diverged, or a defensive arm that turned out to be reachable.
    Unsound,
    /// A non-defensive conflict claim with no divergence witness within
    /// the bounds — vacuous, and a candidate for table repair.
    Unwitnessed,
    /// A defensive fallback arm that is (correctly) unreachable from the
    /// executable vocabulary.
    Defensive,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Verdict::CertifiedCommute => "CERTIFIED_COMMUTE",
            Verdict::WitnessedConflict => "WITNESSED_CONFLICT",
            Verdict::Unsound => "UNSOUND",
            Verdict::Unwitnessed => "UNWITNESSED",
            Verdict::Defensive => "DEFENSIVE",
        };
        f.write_str(s)
    }
}

/// One certified claim: either a per-(family, kind-pair) "commutes" entry
/// or a conflict-reason row of [`er_pi_rdl::conflict_reasons`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CertClaim {
    /// Human-readable claim: `"<family>: <a> × <b> commute"` or the
    /// conflict reason string.
    pub claim: String,
    /// Families the claim spans.
    pub families: Vec<String>,
    /// Number of evidence pairs that exercised the claim.
    pub pairs: usize,
    /// Number of order executions backing the claim.
    pub checks: usize,
    /// The certifier's judgement.
    pub verdict: Verdict,
    /// For conflicts: the witnessing divergence. For unsound commute
    /// claims: the contradicting divergence.
    pub witness: Option<CertWitness>,
}

/// The coverage bounds of the certification run — the "small scope" within
/// which claims are exhaustively checked.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CertBounds {
    /// Replicas per scenario.
    pub replicas: usize,
    /// Start states per family (empty + seeded).
    pub seeds_per_family: usize,
    /// Scenario names (same-replica, cross-replica merge).
    pub scenarios: Vec<String>,
    /// Total concrete operations across all family vocabularies.
    pub vocabulary: usize,
    /// Total unordered pairs executed.
    pub pair_rows: usize,
    /// The small-scope argument, in one sentence.
    pub note: String,
}

/// Aggregate verdict counts for dashboards and the CI gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CertSummary {
    /// Evidence pairs executed.
    pub pairs: usize,
    /// Total order executions.
    pub checks: usize,
    /// "Commutes" claims certified convergent.
    pub certified_commute: usize,
    /// Conflict reasons with a divergence witness.
    pub witnessed_conflict: usize,
    /// Correctly unreachable defensive arms.
    pub defensive: usize,
    /// Claims contradicted by execution.
    pub unsound: usize,
    /// Vacuous conflict claims.
    pub unwitnessed: usize,
}

/// The machine-readable output of one certification run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CertifiedTable {
    /// Coverage bounds of the run.
    pub bounds: CertBounds,
    /// Per-(family, kind-pair) "commutes" claims.
    pub commute_claims: Vec<CertClaim>,
    /// Per-reason conflict claims, covering 100% of
    /// [`er_pi_rdl::conflict_reasons`].
    pub conflict_claims: Vec<CertClaim>,
    /// Raw per-pair evidence rows.
    pub pairs: Vec<PairEvidence>,
    /// Conflict reasons observed in evidence but missing from the
    /// [`er_pi_rdl::conflict_reasons`] enumeration (always a table bug).
    pub unenumerated: Vec<String>,
}

impl CertifiedTable {
    /// All claims the execution evidence contradicts.
    pub fn unsound(&self) -> Vec<&CertClaim> {
        self.commute_claims
            .iter()
            .chain(self.conflict_claims.iter())
            .filter(|c| c.verdict == Verdict::Unsound)
            .collect()
    }

    /// All vacuous conflict claims.
    pub fn unwitnessed(&self) -> Vec<&CertClaim> {
        self.conflict_claims
            .iter()
            .filter(|c| c.verdict == Verdict::Unwitnessed)
            .collect()
    }

    /// `true` when no claim is unsound, vacuous, or unenumerated — the
    /// precondition for trusting independence-based pruning.
    pub fn is_sound(&self) -> bool {
        self.unsound().is_empty() && self.unwitnessed().is_empty() && self.unenumerated.is_empty()
    }

    /// Aggregate verdict counts.
    pub fn summary(&self) -> CertSummary {
        let mut s = CertSummary {
            pairs: self.pairs.len(),
            checks: self.pairs.iter().map(|p| p.checks).sum(),
            certified_commute: 0,
            witnessed_conflict: 0,
            defensive: 0,
            unsound: 0,
            unwitnessed: 0,
        };
        for claim in self
            .commute_claims
            .iter()
            .chain(self.conflict_claims.iter())
        {
            match claim.verdict {
                Verdict::CertifiedCommute => s.certified_commute += 1,
                Verdict::WitnessedConflict => s.witnessed_conflict += 1,
                Verdict::Defensive => s.defensive += 1,
                Verdict::Unsound => s.unsound += 1,
                Verdict::Unwitnessed => s.unwitnessed += 1,
            }
        }
        s
    }

    /// Verdict for the "commutes" claim on a (family, kind-pair), judged
    /// over every evidence pair the vocabulary produced for it. `None`
    /// when the vocabulary produced no commuting pair of these kinds.
    pub fn commute_verdict(&self, family: &str, sig_a: &str, sig_b: &str) -> Option<Verdict> {
        let mut seen = false;
        let mut unsound = false;
        for row in &self.pairs {
            if row.family != family || row.claim.is_some() {
                continue;
            }
            let hit = (row.sig_a == sig_a && row.sig_b == sig_b)
                || (row.sig_a == sig_b && row.sig_b == sig_a);
            if hit {
                seen = true;
                unsound |= row.diverged;
            }
        }
        match (seen, unsound) {
            (false, _) => None,
            (true, true) => Some(Verdict::Unsound),
            (true, false) => Some(Verdict::CertifiedCommute),
        }
    }

    /// Verdict for one conflict reason, if enumerated or observed.
    pub fn conflict_verdict(&self, reason: &str) -> Option<Verdict> {
        self.conflict_claims
            .iter()
            .find(|c| c.claim == reason)
            .map(|c| c.verdict)
    }
}

/// Certifies the real table: the oracle is [`OpProfile::commutes_with`].
pub fn certify_table() -> CertifiedTable {
    certify_table_with(&|a, b| a.commutes_with(b))
}

/// Certifies an arbitrary claim oracle against the real `er-pi-rdl`
/// execution semantics. Tests inject deliberately corrupted oracles here
/// to prove a wrong table entry surfaces as [`Verdict::Unsound`].
pub fn certify_table_with(
    oracle: &dyn Fn(&OpProfile, &OpProfile) -> Option<&'static str>,
) -> CertifiedTable {
    let pairs = certify_pairs(oracle);

    // Commute claims: group claim-less evidence rows by (family, kind pair).
    let mut commute_claims: Vec<CertClaim> = Vec::new();
    let mut commute_keys: Vec<(String, String, String)> = Vec::new();
    for row in pairs.iter().filter(|r| r.claim.is_none()) {
        let (sa, sb) = if row.sig_a <= row.sig_b {
            (row.sig_a.clone(), row.sig_b.clone())
        } else {
            (row.sig_b.clone(), row.sig_a.clone())
        };
        let key = (row.family.clone(), sa.clone(), sb.clone());
        let idx = match commute_keys.iter().position(|k| *k == key) {
            Some(idx) => idx,
            None => {
                commute_keys.push(key);
                commute_claims.push(CertClaim {
                    claim: format!("{}: {sa} × {sb} commute", row.family),
                    families: vec![row.family.clone()],
                    pairs: 0,
                    checks: 0,
                    verdict: Verdict::CertifiedCommute,
                    witness: None,
                });
                commute_claims.len() - 1
            }
        };
        let claim = &mut commute_claims[idx];
        claim.pairs += 1;
        claim.checks += row.checks;
        if row.diverged {
            claim.verdict = Verdict::Unsound;
            if claim.witness.is_none() {
                claim.witness = row.witness.clone();
            }
        }
    }

    // Conflict claims: one row per enumerated reason, judged reason-level —
    // a reason is witnessed when *any* pair that maps to it diverges
    // (individual pairs may be conservatively flagged without diverging).
    let enumerated = conflict_reasons();
    let mut conflict_claims: Vec<CertClaim> = Vec::new();
    for reason in enumerated {
        let rows: Vec<&PairEvidence> = pairs
            .iter()
            .filter(|r| r.claim.as_deref() == Some(reason.reason))
            .collect();
        let checks = rows.iter().map(|r| r.checks).sum();
        let witness = rows.iter().find_map(|r| r.witness.clone());
        let verdict = if reason.defensive {
            if rows.is_empty() {
                Verdict::Defensive
            } else {
                // A reachable "defensive" arm is a misfiled claim.
                Verdict::Unsound
            }
        } else if witness.is_some() {
            Verdict::WitnessedConflict
        } else {
            Verdict::Unwitnessed
        };
        conflict_claims.push(CertClaim {
            claim: reason.reason.to_string(),
            families: reason
                .families
                .iter()
                .map(|f| family_name(*f))
                .map(str::to_string)
                .collect(),
            pairs: rows.len(),
            checks,
            verdict,
            witness,
        });
    }

    // Reasons the oracle emitted that the enumeration does not know.
    let mut unenumerated: Vec<String> = Vec::new();
    for row in pairs.iter() {
        if let Some(reason) = &row.claim {
            let known = enumerated.iter().any(|r| r.reason == *reason);
            if !known && !unenumerated.contains(reason) {
                unenumerated.push(reason.clone());
            }
        }
    }
    for reason in &unenumerated {
        let rows: Vec<&PairEvidence> = pairs
            .iter()
            .filter(|r| r.claim.as_deref() == Some(reason.as_str()))
            .collect();
        let mut families: Vec<String> = rows.iter().map(|r| r.family.clone()).collect();
        families.sort_unstable();
        families.dedup();
        let witness = rows.iter().find_map(|r| r.witness.clone());
        conflict_claims.push(CertClaim {
            claim: reason.clone(),
            families,
            pairs: rows.len(),
            checks: rows.iter().map(|r| r.checks).sum(),
            verdict: if witness.is_some() {
                Verdict::WitnessedConflict
            } else {
                Verdict::Unwitnessed
            },
            witness,
        });
    }

    let bounds = CertBounds {
        replicas: 2,
        seeds_per_family: 2,
        scenarios: vec!["same-replica".to_string(), "cross-replica".to_string()],
        vocabulary: crate::certify::vocabulary_size(),
        pair_rows: pairs.len(),
        note: "exhaustive over all unordered vocabulary pairs, both orders, \
               every seed, scenario, and resolution config; divergence = \
               observable state or any per-op outcome differs"
            .to_string(),
    };

    CertifiedTable {
        bounds,
        commute_claims,
        conflict_claims,
        pairs,
        unenumerated,
    }
}

fn soundness_diag(message: String) -> Diagnostic {
    Diagnostic {
        misconception: LintPattern::IndependenceSoundness.misconception(),
        pattern: LintPattern::IndependenceSoundness,
        message,
        events: Vec::new(),
        replica: ReplicaId::new(0),
    }
}

/// Converts every unsound or vacuous entry of a certified table into
/// [`LintPattern::IndependenceSoundness`] diagnostics, ready to surface in
/// `Report::diagnostics` alongside the misconception lints.
pub fn validate_table(table: &CertifiedTable) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for claim in table.unsound() {
        let detail = claim
            .witness
            .as_ref()
            .map(|w| {
                format!(
                    " ({} {} seeded={} config={}: forward {} vs swapped {})",
                    w.pair, w.scenario, w.seeded, w.config, w.forward, w.swapped
                )
            })
            .unwrap_or_default();
        out.push(soundness_diag(format!(
            "UNSOUND table entry '{}' [{}]: execution contradicts the claim{detail}",
            claim.claim,
            claim.families.join(","),
        )));
    }
    for claim in table.unwitnessed() {
        out.push(soundness_diag(format!(
            "UNWITNESSED conflict claim '{}' [{}]: no divergence within certification \
             bounds ({} pairs, {} checks) — the entry is vacuous or misfiled",
            claim.claim,
            claim.families.join(","),
            claim.pairs,
            claim.checks,
        )));
    }
    for reason in &table.unenumerated {
        out.push(soundness_diag(format!(
            "conflict reason '{reason}' is emitted by the table but missing from \
             er_pi_rdl::conflict_reasons()",
        )));
    }
    out
}

/// Cross-checks the independence declarations of `config` (hand-written or
/// Datalog-derived) against the certified table: any declared-independent
/// pair whose profiles the table says conflict — or whose "commutes" claim
/// was certified unsound — becomes a diagnostic, *before* any pruning runs.
pub fn validate_independence(
    workload: &Workload,
    config: &PruningConfig,
    table: &CertifiedTable,
) -> Vec<Diagnostic> {
    let profiles: Vec<Option<OpProfile>> = workload
        .events()
        .iter()
        .map(|ev| ev.op().and_then(interpret_op))
        .collect();
    let mut out = Vec::new();
    for set in &config.independent_sets {
        for (i, &a) in set.iter().enumerate() {
            for &b in set.iter().skip(i + 1) {
                let (Some(pa), Some(pb)) = (
                    profiles.get(a.index()).and_then(|p| p.as_ref()),
                    profiles.get(b.index()).and_then(|p| p.as_ref()),
                ) else {
                    continue;
                };
                let replica = workload.events()[a.index()].replica;
                if let Some(reason) = pa.commutes_with(pb) {
                    let verdict = table
                        .conflict_verdict(reason)
                        .unwrap_or(Verdict::Unwitnessed);
                    out.push(Diagnostic {
                        misconception: 0,
                        pattern: LintPattern::IndependenceSoundness,
                        message: format!(
                            "declared-independent events {a:?} × {b:?} conflict per the \
                             certified table: '{reason}' ({verdict})",
                        ),
                        events: vec![a, b],
                        replica,
                    });
                } else if pa.crdt == pb.crdt
                    && table.commute_verdict(
                        family_name(pa.crdt),
                        kind_sig(&pa.kind),
                        kind_sig(&pb.kind),
                    ) == Some(Verdict::Unsound)
                {
                    out.push(Diagnostic {
                        misconception: 0,
                        pattern: LintPattern::IndependenceSoundness,
                        message: format!(
                            "declared-independent events {a:?} × {b:?} rely on a commute \
                             claim certified UNSOUND for {}",
                            family_name(pa.crdt),
                        ),
                        events: vec![a, b],
                        replica,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_pi_model::Value;

    #[test]
    fn real_table_certifies_sound() {
        let table = certify_table();
        assert!(
            table.is_sound(),
            "unsound: {:?}\nunwitnessed: {:?}\nunenumerated: {:?}",
            table.unsound(),
            table.unwitnessed(),
            table.unenumerated
        );
        assert!(validate_table(&table).is_empty());
    }

    #[test]
    fn every_conflict_reason_is_covered() {
        let table = certify_table();
        for reason in er_pi_rdl::conflict_reasons() {
            let verdict = table
                .conflict_verdict(reason.reason)
                .unwrap_or_else(|| panic!("reason '{}' missing from table", reason.reason));
            if reason.defensive {
                assert_eq!(verdict, Verdict::Defensive, "{}", reason.reason);
            } else {
                assert_eq!(verdict, Verdict::WitnessedConflict, "{}", reason.reason);
            }
        }
    }

    #[test]
    fn summary_counts_are_consistent() {
        let table = certify_table();
        let s = table.summary();
        assert_eq!(s.unsound, 0);
        assert_eq!(s.unwitnessed, 0);
        assert_eq!(
            s.certified_commute,
            table.commute_claims.len(),
            "all commute claims certified"
        );
        assert!(s.witnessed_conflict > 0);
        assert!(s.defensive > 0);
        assert!(s.checks > s.pairs);
    }

    #[test]
    fn corrupted_commute_entry_is_unsound() {
        // Corrupt the oracle: claim same-element OR-set add/remove commute.
        let table = certify_table_with(&|a, b| {
            let real = a.commutes_with(b);
            if real == Some("add and remove of one element race") {
                None
            } else {
                real
            }
        });
        assert!(!table.is_sound());
        let diags = validate_table(&table);
        assert!(
            diags
                .iter()
                .any(|d| d.pattern == LintPattern::IndependenceSoundness
                    && d.message.contains("UNSOUND")),
            "diagnostics: {diags:?}"
        );
    }

    #[test]
    fn invented_vacuous_conflict_is_unwitnessed() {
        // Corrupt the oracle the other way: claim distinct counter
        // increments conflict. The harness cannot witness it.
        let table = certify_table_with(&|a, b| {
            a.commutes_with(b).or({
                if a.crdt == er_pi_rdl::CrdtType::GCounter {
                    Some("invented counter race")
                } else {
                    None
                }
            })
        });
        assert!(table
            .unenumerated
            .contains(&"invented counter race".to_string()));
        assert_eq!(
            table.conflict_verdict("invented counter race"),
            Some(Verdict::Unwitnessed)
        );
        assert!(!validate_table(&table).is_empty());
    }

    #[test]
    fn declared_independence_is_cross_checked() {
        let table = certify_table();
        let mut w = Workload::builder();
        let a = w.update(ReplicaId::new(0), "add", [Value::from("x")]);
        let b = w.update(ReplicaId::new(1), "remove", [Value::from("x")]);
        let workload = w.build();
        let config = PruningConfig::default().with_independent_set(vec![a, b]);
        let diags = validate_independence(&workload, &config, &table);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0]
            .message
            .contains("add and remove of one element race"));
        assert_eq!(diags[0].events, vec![a, b]);

        // A genuinely commuting declaration raises nothing.
        let mut w2 = Workload::builder();
        let c = w2.update(ReplicaId::new(0), "counter_inc", [Value::from(1)]);
        let d = w2.update(ReplicaId::new(1), "counter_inc", [Value::from(2)]);
        let workload2 = w2.build();
        let config2 = PruningConfig::default().with_independent_set(vec![c, d]);
        assert!(validate_independence(&workload2, &config2, &table).is_empty());
    }
}

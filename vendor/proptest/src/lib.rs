//! Minimal offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_shuffle` / `prop_perturb`,
//! range and tuple strategies, [`Just`], `any::<bool>()`,
//! [`collection::vec`], and the `proptest!` / `prop_assert*` /
//! `prop_assume!` / `prop_oneof!` macros. Case generation is deterministic
//! per (test name, case index); there is no shrinking — failures report the
//! case index and message.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! Deterministic RNG driving case generation.

    /// A small splitmix64-based RNG. Cloning forks the stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for one named test case.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Returns the next random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform sample in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }

        /// Returns a uniformly random value of `T` (used by `prop_perturb`).
        pub fn gen<T: RngValue>(&mut self) -> T {
            T::from_rng(self)
        }
    }

    /// Types drawable directly from a [`TestRng`].
    pub trait RngValue {
        /// Draws a uniform sample.
        fn from_rng(rng: &mut TestRng) -> Self;
    }

    macro_rules! rng_value_ints {
        ($($t:ty),*) => {$(
            impl RngValue for $t {
                fn from_rng(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    rng_value_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl RngValue for bool {
        fn from_rng(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

use test_runner::TestRng;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Randomly permutes generated collections.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }

    /// Maps generated values through `f` with access to a forked RNG.
    fn prop_perturb<O, F: Fn(Self::Value, TestRng) -> O>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
    {
        Perturb { inner: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        let mut fork = rng.clone();
        fork.next_u64();
        // Advance the parent stream so sibling strategies diverge from the fork.
        rng.next_u64();
        (self.f)(value, fork)
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permutes `self` in place.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut value = self.inner.generate(rng);
        value.shuffle(rng);
        value
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Strategy for the full domain of `T` (only the types the workspace uses).
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Returns a strategy over the whole domain of `T`.
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_ints {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A two-way union produced by `prop_oneof!`; nested for more arms.
#[derive(Debug, Clone)]
pub struct Union<A, B>(pub A, pub B);

impl<T, A, B> Strategy for Union<A, B>
where
    A: Strategy<Value = T>,
    B: Strategy<Value = T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        if rng.next_u64() & 1 == 0 {
            self.0.generate(rng)
        } else {
            self.1.generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        AnyStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property-test functions; see the crate docs for the shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*
        }
    };
}

/// Internal expansion target for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                __case,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} == {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} != {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among the given strategies (same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(,)?) => { $first };
    ($first:expr, $($rest:expr),+ $(,)?) => {
        $crate::Union($first, $crate::prop_oneof!($($rest),+))
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_in_bounds(x in 3u16..9, y in -4i64..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn shuffle_permutes(v in Just((0u32..8).collect::<Vec<_>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u16..2).prop_map(|x| x as i64),
            (10u16..12).prop_map(|x| x as i64),
        ]) {
            prop_assert!(v < 2 || (10..12).contains(&v));
        }

        #[test]
        fn perturb_forks_rng(seed in Just(()).prop_perturb(|(), mut rng| rng.gen::<u64>())) {
            let _ = seed;
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! Minimal offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Generates `Serialize` / `Deserialize` impls against the vendored `serde`
//! crate's `Content` data model. Supports the subset of shapes this workspace
//! actually derives: braced structs (optionally generic with inline bounds),
//! tuple structs, unit structs, and externally-tagged enums with unit /
//! newtype / tuple / struct variants. Recognised attributes:
//! `#[serde(transparent)]` (container) and `#[serde(default)]` (container or
//! field).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsed item model
// ---------------------------------------------------------------------------

struct FieldInfo {
    name: String,
    default: bool,
}

enum Body {
    Named(Vec<FieldInfo>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct GParam {
    name: String,
    bounds: String,
}

struct Item {
    name: String,
    transparent: bool,
    container_default: bool,
    generics: Vec<GParam>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_str(t: &TokenTree) -> String {
    match t {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected identifier, found `{other}`"),
    }
}

fn ident_is(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

/// Returns the idents inside a `#[serde(...)]` attribute bracket group, or
/// an empty list for any other attribute.
fn serde_words(bracket: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = bracket.stream().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => match toks.get(1) {
            Some(TokenTree::Group(inner)) => inner
                .stream()
                .into_iter()
                .filter_map(|t| match t {
                    TokenTree::Ident(id) => Some(id.to_string()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        },
        _ => Vec::new(),
    }
}

/// Skips `#[...]` attributes starting at `*i`, feeding serde words to `sink`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize, sink: &mut dyn FnMut(&str)) {
    while *i + 1 < toks.len() && is_punct(&toks[*i], '#') {
        if let TokenTree::Group(g) = &toks[*i + 1] {
            for w in serde_words(g) {
                sink(&w);
            }
        }
        *i += 2;
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    let mut transparent = false;
    let mut container_default = false;
    skip_attrs(&toks, &mut i, &mut |w| match w {
        "transparent" => transparent = true,
        "default" => container_default = true,
        _ => {}
    });
    if ident_is(&toks[i], "pub") {
        i += 1;
        if matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }
    let kind = ident_str(&toks[i]);
    i += 1;
    let name = ident_str(&toks[i]);
    i += 1;
    let generics = parse_generics(&toks, &mut i);
    let body = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g))
            }
            Some(t) if is_punct(t, ';') => Body::Unit,
            other => panic!("serde_derive: unsupported struct body after `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g))
            }
            other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Item {
        name,
        transparent,
        container_default,
        generics,
        body,
    }
}

fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Vec<GParam> {
    let mut out = Vec::new();
    if *i >= toks.len() || !is_punct(&toks[*i], '<') {
        return out;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut current: Vec<TokenTree> = Vec::new();
    let mut params: Vec<Vec<TokenTree>> = Vec::new();
    while *i < toks.len() {
        let t = &toks[*i];
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
            if depth == 0 {
                *i += 1;
                break;
            }
        } else if is_punct(t, ',') && depth == 1 {
            params.push(std::mem::take(&mut current));
            *i += 1;
            continue;
        }
        current.push(t.clone());
        *i += 1;
    }
    if !current.is_empty() {
        params.push(current);
    }
    for p in params {
        out.push(parse_gparam(&p));
    }
    out
}

fn parse_gparam(toks: &[TokenTree]) -> GParam {
    if toks.is_empty() || matches!(&toks[0], TokenTree::Punct(p) if p.as_char() == '\'') {
        panic!("serde_derive: lifetime/const generic params are not supported");
    }
    let name = ident_str(&toks[0]);
    let bounds = if toks.len() > 2 && is_punct(&toks[1], ':') {
        toks[2..]
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    } else {
        String::new()
    };
    GParam { name, bounds }
}

fn parse_named_fields(g: &Group) -> Vec<FieldInfo> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < toks.len() {
        let mut default = false;
        skip_attrs(&toks, &mut i, &mut |w| {
            if w == "default" {
                default = true;
            }
        });
        if i >= toks.len() {
            break;
        }
        if ident_is(&toks[i], "pub") {
            i += 1;
            if matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        }
        let name = ident_str(&toks[i]);
        i += 1;
        assert!(
            is_punct(&toks[i], ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type up to the next top-level comma. Groups are single
        // trees; only `<`/`>` puncts need explicit depth tracking.
        let mut depth = 0i32;
        while i < toks.len() {
            let t = &toks[i];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') {
                depth -= 1;
            } else if is_punct(t, ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        out.push(FieldInfo { name, default });
    }
    out
}

fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1usize;
    let mut saw_trailing = false;
    for (idx, t) in toks.iter().enumerate() {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if is_punct(t, ',') && depth == 0 {
            if idx == toks.len() - 1 {
                saw_trailing = true;
            } else {
                count += 1;
            }
        }
    }
    let _ = saw_trailing;
    count
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i, &mut |_| {});
        if i >= toks.len() {
            break;
        }
        let name = ident_str(&toks[i]);
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(vg).into_iter().map(|f| f.name).collect())
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(vg))
            }
            _ => VariantShape::Unit,
        };
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        if i < toks.len() {
            i += 1;
        }
        out.push(Variant { name, shape });
    }
    out
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str, bound: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let ig: Vec<String> = item
            .generics
            .iter()
            .map(|g| {
                if g.bounds.is_empty() {
                    format!("{}: {bound}", g.name)
                } else {
                    format!("{}: {} + {bound}", g.name, g.bounds)
                }
            })
            .collect();
        let tg: Vec<String> = item.generics.iter().map(|g| g.name.clone()).collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}>",
            ig.join(", "),
            item.name,
            tg.join(", ")
        )
    }
}

fn str_content(s: &str) -> String {
    format!("::serde::Content::Str(::std::string::String::from(\"{s}\"))")
}

fn gen_serialize(item: &Item) -> String {
    let header = impl_header(item, "Serialize", "::serde::Serialize");
    let body = match &item.body {
        Body::Named(fields) => {
            if item.transparent && fields.len() == 1 {
                format!("::serde::Serialize::to_content(&self.{})", fields[0].name)
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "({}, ::serde::Serialize::to_content(&self.{}))",
                            str_content(&f.name),
                            f.name
                        )
                    })
                    .collect();
                format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
            }
        }
        Body::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
        }
        Body::Unit => "::serde::Content::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            format!("Self::{vname} => {},", str_content(vname))
                        }
                        VariantShape::Tuple(1) => format!(
                            "Self::{vname}(__f0) => ::serde::Content::Map(::std::vec![({}, ::serde::Serialize::to_content(__f0))]),",
                            str_content(vname)
                        ),
                        VariantShape::Tuple(n) => {
                            let pats: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                                .collect();
                            format!(
                                "Self::{vname}({}) => ::serde::Content::Map(::std::vec![({}, ::serde::Content::Seq(::std::vec![{}]))]),",
                                pats.join(", "),
                                str_content(vname),
                                elems.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let pats = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({}, ::serde::Serialize::to_content({f}))",
                                        str_content(f)
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vname} {{ {pats} }} => ::serde::Content::Map(::std::vec![({}, ::serde::Content::Map(::std::vec![{}]))]),",
                                str_content(vname),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] {header} {{ fn to_content(&self) -> ::serde::Content {{ {body} }} }}"
    )
}

fn named_field_expr(f: &FieldInfo, container_default: bool, ty: &str, map_var: &str) -> String {
    let missing = if f.default || container_default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{}\", \"{ty}\"))",
            f.name
        )
    };
    format!(
        "{}: match ::serde::content_get({map_var}, \"{}\") {{ ::std::option::Option::Some(__v) => ::serde::Deserialize::from_content(__v)?, ::std::option::Option::None => {missing} }}",
        f.name, f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let header = impl_header(item, "Deserialize", "::serde::Deserialize");
    let ty = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            if item.transparent && fields.len() == 1 {
                format!(
                    "::std::result::Result::Ok(Self {{ {}: ::serde::Deserialize::from_content(__c)? }})",
                    fields[0].name
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| named_field_expr(f, item.container_default, ty, "__m"))
                    .collect();
                format!(
                    "match __c {{ ::serde::Content::Map(__m) => ::std::result::Result::Ok(Self {{ {} }}), _ => ::std::result::Result::Err(::serde::DeError::expected(\"map\", \"{ty}\")) }}",
                    inits.join(", ")
                )
            }
        }
        Body::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_content(__c)?))".to_string()
        }
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            format!(
                "match __c {{ ::serde::Content::Seq(__s) if __s.len() == {n} => ::std::result::Result::Ok(Self({})), _ => ::std::result::Result::Err(::serde::DeError::expected(\"sequence of {n}\", \"{ty}\")) }}",
                elems.join(", ")
            )
        }
        Body::Unit => "::std::result::Result::Ok(Self)".to_string(),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok(Self::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}(::serde::Deserialize::from_content(__v)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&__s[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match __v {{ ::serde::Content::Seq(__s) if __s.len() == {n} => ::std::result::Result::Ok(Self::{vname}({})), _ => ::std::result::Result::Err(::serde::DeError::expected(\"sequence of {n}\", \"{ty}::{vname}\")) }},",
                                elems.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|name| {
                                    let f = FieldInfo { name: name.clone(), default: false };
                                    named_field_expr(&f, false, ty, "__m2")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match __v {{ ::serde::Content::Map(__m2) => ::std::result::Result::Ok(Self::{vname} {{ {} }}), _ => ::std::result::Result::Err(::serde::DeError::expected(\"map\", \"{ty}::{vname}\")) }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let v_pat = if data_arms.is_empty() { "_" } else { "__v" };
            format!(
                "match __c {{ \
                   ::serde::Content::Str(__s) => match __s.as_str() {{ {} __o => ::std::result::Result::Err(::serde::DeError::unknown_variant(__o, \"{ty}\")) }}, \
                   ::serde::Content::Map(__m) if __m.len() == 1 => {{ \
                     let (__k, {v_pat}) = &__m[0]; \
                     let __k = match __k {{ ::serde::Content::Str(__s) => __s.as_str(), _ => return ::std::result::Result::Err(::serde::DeError::expected(\"string variant key\", \"{ty}\")) }}; \
                     match __k {{ {} __o => ::std::result::Result::Err(::serde::DeError::unknown_variant(__o, \"{ty}\")) }} \
                   }}, \
                   _ => ::std::result::Result::Err(::serde::DeError::expected(\"externally tagged variant\", \"{ty}\")) }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] {header} {{ fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}

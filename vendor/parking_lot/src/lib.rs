//! Minimal offline stand-in for `parking_lot`: a [`Mutex`] and [`RwLock`]
//! with the parking_lot API shape (no poisoning, `lock()` returns the guard
//! directly), backed by `std::sync`.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`].
///
/// One deliberate divergence from upstream parking_lot: `wait` takes the
/// guard by value and returns it (the `std::sync::Condvar` shape) instead
/// of `&mut guard` — the by-reference form needs raw lock internals this
/// std-backed stand-in does not have.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the lock while parked. Spurious
    /// wake-ups are possible — re-check the predicate in a loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. The bool is
    /// `true` when the wait timed out (std's `WaitTimeoutResult` shape);
    /// spurious wake-ups are still possible either way.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.inner.wait_timeout(guard, timeout) {
            Ok((guard, result)) => (guard, result.timed_out()),
            Err(e) => {
                let (guard, result) = e.into_inner();
                (guard, result.timed_out())
            }
        }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A readers-writer lock with the parking_lot API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_a_parked_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

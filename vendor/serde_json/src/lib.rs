//! Minimal offline stand-in for `serde_json`, rendering the vendored
//! `serde::Content` data model to JSON text and parsing it back.
//!
//! Provides exactly the functions this workspace calls: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and the [`Error`] type.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// A serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    T::from_content(&content).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_content(
    c: &Content,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::UInt(u) => out.push_str(&u.to_string()),
        Content::F64(f) => {
            if !f.is_finite() {
                return Err(Error("cannot serialize non-finite float".into()));
            }
            // Match serde_json: always distinguishable from an integer.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_key(k, out)?;
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// JSON object keys must be strings; integers and booleans are quoted the way
/// real serde_json renders integer map keys.
fn write_key(k: &Content, out: &mut String) -> Result<(), Error> {
    match k {
        Content::Str(s) => {
            write_escaped(s, out);
            Ok(())
        }
        Content::Int(i) => {
            out.push('"');
            out.push_str(&i.to_string());
            out.push('"');
            Ok(())
        }
        Content::UInt(u) => {
            out.push('"');
            out.push_str(&u.to_string());
            out.push('"');
            Ok(())
        }
        Content::Bool(b) => {
            out.push('"');
            out.push_str(if *b { "true" } else { "false" });
            out.push('"');
            Ok(())
        }
        _ => Err(Error("map keys must be strings or integers".into())),
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                self.eat_literal("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Decode the next UTF-8 scalar from the source slice.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Content::Int(i));
            }
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Content::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&"hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1i64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<i64>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        assert_eq!(to_string(&m).unwrap(), "{\"a\":1}");

        let mut im = std::collections::BTreeMap::new();
        im.insert(3u16, 9i64);
        let json = to_string(&im).unwrap();
        assert_eq!(json, "{\"3\":9}");
        assert_eq!(
            from_str::<std::collections::BTreeMap<u16, i64>>(&json).unwrap(),
            im
        );
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1i64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            "A😀"
        );
    }
}

//! Minimal offline stand-in for `serde`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a small serde-compatible surface: a self-describing
//! [`Content`] tree as the data model, [`Serialize`] / [`Deserialize`] traits
//! that convert to and from it, and (behind the `derive` feature) re-exported
//! derive macros from the local `serde_derive`. `serde_json` renders
//! `Content` to JSON text and back.
//!
//! Only the API surface this workspace uses is provided; the derive macros
//! mirror real serde's externally-tagged representation so JSON produced here
//! matches what the real stack would emit for these types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable value lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (covers every unsigned value up to `i128::MAX`).
    Int(i128),
    /// An unsigned integer outside the `i128` range.
    UInt(u128),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered list of key/value entries.
    Map(Vec<(Content, Content)>),
}

/// Types that can lower themselves into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the serde data model.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serde data model.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// A deserialization error: a message describing what was expected.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// An arbitrary error message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserializing T".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An enum key did not match any variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up `key` in a map's entry list (string keys only).
pub fn content_get<'a>(entries: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find_map(|(k, v)| match k {
        Content::Str(s) if s == key => Some(v),
        _ => None,
    })
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!("{} out of range for {}", i, stringify!($t)))),
                    Content::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{} out of range for {}", u, stringify!($t)))),
                    Content::Str(s) => s.parse::<$t>()
                        .map_err(|_| DeError::expected("integer string", stringify!($t))),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for i128 {
    fn to_content(&self) -> Content {
        Content::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Int(i) => Ok(*i),
            Content::UInt(u) => {
                i128::try_from(*u).map_err(|_| DeError::custom("u128 out of range for i128"))
            }
            Content::Str(s) => s
                .parse()
                .map_err(|_| DeError::expected("integer string", "i128")),
            _ => Err(DeError::expected("integer", "i128")),
        }
    }
}

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        match i128::try_from(*self) {
            Ok(i) => Content::Int(i),
            Err(_) => Content::UInt(*self),
        }
    }
}

impl Deserialize for u128 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Int(i) => {
                u128::try_from(*i).map_err(|_| DeError::custom("negative value for u128"))
            }
            Content::UInt(u) => Ok(*u),
            Content::Str(s) => s
                .parse()
                .map_err(|_| DeError::expected("integer string", "u128")),
            _ => Err(DeError::expected("integer", "u128")),
        }
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(f) => Ok(*f as $t),
                    Content::Int(i) => Ok(*i as $t),
                    Content::UInt(u) => Ok(*u as $t),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            _ => Err(DeError::expected("null", "()")),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("sequence", "VecDeque")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match content {
                    Content::Seq(items) if items.len() == LEN => {
                        Ok(($($t::from_content(&items[$n])?,)+))
                    }
                    _ => Err(DeError::expected("tuple sequence", "tuple")),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::expected("map", "BTreeMap")),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::expected("map", "HashMap")),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("sequence", "BTreeSet")),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("sequence", "HashSet")),
        }
    }
}

//! Minimal offline stand-in for `criterion`: the macro and builder surface
//! used by `crates/bench/benches/micro.rs`, measuring wall time with
//! `std::time::Instant` and printing one line per benchmark. No statistics,
//! plots, or baselines — just enough to keep `cargo bench` meaningful
//! offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How batched inputs are grouped between timing measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters > 0 {
        bencher.elapsed / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {id:<50} {per_iter:>12?}/iter ({} iters)",
        bencher.iters
    );
}

/// Times closures passed by the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` with a fresh un-timed `setup` input per iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a function that runs the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Minimal offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the API this workspace uses: [`rngs::StdRng`]
//! (xoshiro256** seeded via splitmix64), [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`], and [`seq::SliceRandom::shuffle`].
//! Streams are deterministic per seed but are not bit-compatible with the
//! real crate; the workspace only relies on determinism and uniformity.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns a uniform sample from the half-open `range`.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(
            range.start < range.end,
            "gen_range called with an empty range"
        );
        T::sample_uniform(range.start, range.end, self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate, flattened into a trait).
pub trait Standard {
    /// Draws a uniform sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_ints {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Types with uniform sampling over a half-open range.
pub trait SampleUniform: Sized {
    /// Draws a sample in `[low, high)`.
    fn sample_uniform<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_ints {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling; bias is negligible for the
                // spans used here (all far below 2^64).
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + hi as i128) as $t
            }
        }
    )*};
}

uniform_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // Avoid the all-zero state, which xoshiro cannot escape.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Extension trait for slices: random shuffling and choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Returns an RNG seeded from program entropy. Deterministic fallback here:
/// seeded from the current time, good enough for non-test callers.
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u16..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0..8usize);
            assert!(u < 8);
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
